"""The true-parallel backend: Fluid task bodies in a process pool.

CPython's GIL serializes the thread backend's task bodies, so only the
virtual-time simulator could demonstrate the paper's latency numbers.
This backend runs bodies on real cores: a pool of forked worker
processes *does* the work while the parent process keeps *deciding* —
every valve check, Figure-5 transition and re-execution decision goes
through the same :class:`~repro.core.guard.Coordinator` as the
simulator and the thread backend, serialized in the parent's single
control loop.

Division of labour
------------------

parent (control loop)
    Region admission, start-valve checks, dispatch, the whole guard
    state machine, end-quality evaluation, early termination,
    modulation.  Owns the authoritative ``FluidData``/``Count`` objects.

workers (forked processes)
    Execute task bodies serially against their own copies of the region
    objects.  Inputs/outputs/counts are (re)installed from parent
    snapshots at dispatch; count updates and payload writes are
    streamed back in chunk-boundary batches.

Batched dispatch
----------------

When more tasks are ready than workers are idle, the parent coalesces
up to ``batch_size`` ready bodies into one worker round-trip (one
``("runs", ...)`` message), amortizing the queue/pickle cost that
dominates small-body workloads.  Scheduler-pick order is preserved —
batch items are exactly the next picks the scheduler would have made —
and per-task events (``sched``/``run``, ``worker``/``dispatch``,
``payload``/``to-worker``) are still emitted individually, so golden
traces and SchedLab replay are unaffected.  Each dispatch carries a
unique ``dispatch_id``; every worker message echoes it, which makes the
parent robust to stale messages from respawned or re-leased workers.
Cancellation stays advisory: the per-slot cancel flag holds the
dispatch_id to abandon (or ``-1`` for *everything*), checked at item
start and at every chunk boundary.

Payload arena
-------------

Large recurring payload cells are shipped through a per-run
:class:`~repro.core.data.PayloadArena` — one shared-memory segment with
a versioned, seqlock-guarded slot per cell — instead of a fresh
segment per payload (see ``core/data.py`` for the read/write contract).
The arena covers the dispatch direction only; worker flushes still use
:func:`~repro.core.data.export_payload` ownership-transfer segments.

Persistent pools
----------------

With ``pool=`` a :class:`~repro.runtime.worker_pool.PersistentProcessPool`,
the executor leases long-lived workers instead of forking its own:
``FluidService`` and windowed ``repro.stream`` pipelines stop paying a
fork per request/window.  Pool workers fork *before* any region exists,
so each region must provide a picklable ``remote_factory`` (see
:class:`~repro.core.region.FluidRegion`); the factory is installed once
per run.  A worker that crashes mid-run is respawned and its in-flight
tasks are re-dispatched instead of failing the run.

Data crosses the boundary as picklable snapshots
(:func:`~repro.core.data.export_payload`); large numpy payloads ride
shared-memory buffers instead of the pickle stream.  Workers check a
shared cancellation flag at every chunk boundary, giving the same
cooperative early-termination the other backends have.

Granularity: where the thread backend publishes every count update and
element write immediately, a worker publishes at chunk boundaries,
batched to at most one flush per ``flush_interval`` seconds.  A
concurrent consumer therefore sees the producer's payload as of the
last flush — a coarser but still monotonically-growing prefix, which is
exactly the relaxation Fluid licenses.  Batching coarsens one more
thing: a batch item transitions to RUNNING at dispatch, so its RUNNING
interval includes time queued behind its batch-mates, and its input
snapshots are taken at dispatch time.

Requirements and limits (see docs/runtime-semantics.md for the matrix):

* ``fork`` start method (POSIX only) — bodies are closures, inherited
  rather than pickled (pool mode rebuilds them from the region's
  ``remote_factory`` instead);
* honest guard tuples — a body may only read/write the cells declared
  in its ``inputs``/``outputs`` (already a Fluid rule; here it is what
  makes snapshot installation correct);
* each data cell needs its own payload object (two cells aliasing one
  buffer would overwrite each other's flushes);
* dynamic task graphs (``ctx.spawn``) are not supported — the spawned
  closure would live in the worker only.
"""

from __future__ import annotations

import logging
import os
import pickle
import queue as queue_module
import time
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.count import RecordingSink
from ..core.data import (PayloadArena, arena_detach_all, import_payload,
                         payload_nbytes)
from ..core.errors import SchedulerError, TaskBodyError
from ..core.guard import Coordinator, GuardHost, ModulationPolicy
from ..core.region import FluidRegion
from ..core.states import TaskState
from ..core.task import FluidTask, TaskContext
from .context import RegionRun, RunContext
from .executor import Executor, RunResult, emit_memo_summary

#: Worker -> parent message kinds.
_PROGRESS, _FINISHED, _CANCELLED, _ERROR = "progress", "finished", "cancelled", "error"

#: Cancel-flag sentinel: abandon every in-flight item on the slot (used
#: when a leased pool is reclaimed); positive values target one
#: dispatch_id, 0 means no cancellation is requested.
_CANCEL_ALL = -1

#: Seconds a pool reclaim waits for cancelled workers to come back
#: before respawning them.
_RECLAIM_GRACE = 2.0

#: Crash-respawn budget per slot per run: beyond this the run fails
#: (a region whose install/body crashes deterministically would
#: otherwise respawn forever).
_MAX_RESPAWNS = 3

logger = logging.getLogger(__name__)


class _WorkerLoop:
    """Worker-side run loop, shared by forked and pooled workers.

    A forked (single-shot) worker resolves regions out of its inherited
    copy of the executor state via ``resolve``; a pool worker forked
    before any region existed rebuilds them from ``("install", ...)``
    factory blobs instead.  Either way the loop serves ``("runs", ...)``
    batches serially, streaming chunk-boundary flushes back on the
    shared outbox as 7-tuples::

        (kind, slot, dispatch_id, region_index, task_index,
         records_or_excrepr, payloads_or_traceback)
    """

    def __init__(self, slot: int, outbox, cancel_flags,
                 resolve: Optional[Callable[[int], FluidRegion]] = None):
        self.slot = slot
        self.outbox = outbox
        self.cancel_flags = cancel_flags
        self.sink = RecordingSink()
        self.regions: Dict[int, FluidRegion] = {}
        self._resolve = resolve

    def serve(self, inbox) -> None:
        while True:
            message = inbox.get()
            if message is None:
                return
            kind = message[0]
            if kind == "runs":
                _kind, flush_interval, items = message
                for item in items:
                    self._run_item(flush_interval, item)
            elif kind == "install":
                self.install(message[1], message[2])
            elif kind == "reset":
                self.reset()

    # -- region management -------------------------------------------------

    def install(self, region_index: int, blob: bytes) -> None:
        """Rebuild a region from its pickled ``remote_factory`` triple."""
        factory, args, kwargs = pickle.loads(blob)
        region = factory(*args, **kwargs)
        region.finalize()
        region.bind_sink(self.sink)
        self.regions[region_index] = region

    def reset(self) -> None:
        """Forget all regions and arena attachments between pool leases.

        Region indices are a per-run namespace, and each run owns a
        fresh payload arena, so neither may leak across leases.
        """
        self.regions.clear()
        arena_detach_all()

    def _region(self, region_index: int) -> FluidRegion:
        region = self.regions.get(region_index)
        if region is None:
            if self._resolve is None:
                raise RuntimeError(
                    f"no region installed at index {region_index}")
            # The worker's forked copy finalizes independently; build()
            # must therefore be structurally deterministic (the graphs
            # in this repo all are).
            region = self._resolve(region_index)
            region.finalize()
            region.bind_sink(self.sink)
            self.regions[region_index] = region
        return region

    # -- body execution ----------------------------------------------------

    def _run_item(self, flush_interval: float, item: Tuple) -> None:
        dispatch_id, region_index, task_index, run_index, payloads, counts = \
            item
        region = self._region(region_index)
        for name, (value, updates) in counts.items():
            count = region.counts[name]
            # Monotone install: a batch-mate that already ran on this
            # worker may have advanced the local count past the parent's
            # dispatch-time snapshot; never regress it.
            if updates >= count.updates:
                count.install_state(value, updates)
        for name, handle in payloads.items():
            region.datas[name].apply_payload(import_payload(handle),
                                             bump=False)
        task = region.tasks[task_index]
        self._run_body(flush_interval, dispatch_id, region_index, task_index,
                       run_index, task)

    def _cancelled(self, dispatch_id: int) -> bool:
        flag = self.cancel_flags[self.slot]
        return flag == dispatch_id or flag == _CANCEL_ALL

    def _run_body(self, flush_interval: float, dispatch_id: int,
                  region_index: int, task_index: int, run_index: int,
                  task: FluidTask) -> None:
        outbox = self.outbox
        slot = self.slot
        if self._cancelled(dispatch_id):
            # Cancelled while still queued behind its batch-mates.
            outbox.put((_CANCELLED, slot, dispatch_id, region_index,
                        task_index, self.sink.drain(), {}))
            return
        task.run_index = run_index
        task.cancel_requested = False
        task.state = TaskState.RUNNING  # worker-local; parent is authoritative
        self.sink.drain()  # drop anything buffered outside a body
        versions = {data.name: data.version for data in task.spec.outputs}
        last_flush = time.monotonic()
        try:
            generator = task.make_generator(TaskContext(task))
            for _cost in generator:
                if self._cancelled(dispatch_id):
                    task.cancel_requested = True
                    generator.close()
                    outbox.put((_CANCELLED, slot, dispatch_id, region_index,
                                task_index, self.sink.drain(), {}))
                    return
                now = time.monotonic()
                if now - last_flush >= flush_interval:
                    last_flush = now
                    payloads = {}
                    for data in task.spec.outputs:
                        if data.version != versions[data.name]:
                            versions[data.name] = data.version
                            payloads[data.name] = data.export_payload()
                    if self.sink.buffer or payloads:
                        outbox.put((_PROGRESS, slot, dispatch_id,
                                    region_index, task_index,
                                    self.sink.drain(), payloads))
        except Exception as exc:
            outbox.put((_ERROR, slot, dispatch_id, region_index, task_index,
                        repr(exc), traceback.format_exc()))
            return
        payloads = {data.name: data.export_payload()
                    for data in task.spec.outputs}
        outbox.put((_FINISHED, slot, dispatch_id, region_index, task_index,
                    self.sink.drain(), payloads))


class ProcessExecutor(Executor, GuardHost):
    """Executes regions with task bodies on a multiprocessing pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()`` (with ``pool=`` the
        pool's size wins).
    flush_interval:
        Minimum seconds between a worker's mid-run publications of count
        updates and payload snapshots.  Smaller values tighten the
        approximation granularity at the cost of more IPC.
    poll_interval / timeout:
        Legacy control-loop wakeup period (now only the timed-``get``
        granularity of the non-event fallback path) and the overall
        wall-clock deadline, as in
        :class:`~repro.runtime.thread_backend.ThreadExecutor`.
    fallback_interval:
        Upper bound on one control-loop block.  The loop is woken by
        events — worker messages arriving on the outbox, or a busy
        worker's process sentinel closing — so this only bounds how
        stale the deadline check can get; default
        ``max(poll_interval * 20, 0.1)``.
    batch_size:
        Maximum ready tasks coalesced into one worker round-trip.  The
        parent only batches when more tasks are queued than workers are
        idle (breadth-first dispatch is never sacrificed for batching);
        ``1`` reproduces the historical one-task-per-message protocol.
    payload_arena:
        Ship large recurring dispatch payloads through a per-run
        :class:`~repro.core.data.PayloadArena` instead of a fresh
        shared-memory segment per payload.
    pool:
        A :class:`~repro.runtime.worker_pool.PersistentProcessPool` to
        lease workers from instead of forking a private pool.  Requires
        every submitted region to carry a picklable ``remote_factory``.
        The executor stays single-shot; the pool outlives it.
    """

    def __init__(self, workers: Optional[int] = None,
                 modulation: Optional[ModulationPolicy] = None,
                 poll_interval: float = 0.005,
                 fallback_interval: Optional[float] = None,
                 timeout: float = 60.0,
                 cancel_first_runs: bool = False,
                 flush_interval: float = 0.01,
                 policy: Optional[object] = None,
                 telemetry: Optional[object] = None,
                 scheduler: Optional[object] = None,
                 autotune: Optional[object] = None,
                 batch_size: int = 8,
                 payload_arena: bool = True,
                 pool: Optional[object] = None):
        if workers is not None and workers < 1:
            raise SchedulerError("need at least one worker process")
        if batch_size < 1:
            raise SchedulerError("batch_size must be at least 1")
        self._pool = pool
        if pool is not None:
            self.workers = pool.workers
        else:
            self.workers = workers or (os.cpu_count() or 1)
        self.modulation = modulation
        self.batch_size = batch_size
        self.payload_arena = payload_arena
        # Closed-loop SLO autotuning (repro.tuning): parent-side, like
        # the guards — valves live in the parent, so actuations need no
        # IPC.  A tuner needs a bus, hence the lightweight Telemetry.
        # Imported lazily for the same cycle reason as repro.sched.
        from ..tuning import make_autotuner
        self.autotuner = make_autotuner(autotune)
        if self.autotuner is not None and telemetry is None:
            from ..telemetry import Telemetry
            telemetry = Telemetry(metrics=False, chrome=False)
        #: Optional repro.telemetry.Telemetry; every publish point is in
        #: the parent control loop, which is single-threaded, so the bus
        #: serialization contract holds.  Workers fork before any region
        #: launches and never see the bus.
        self.telemetry = telemetry
        self._bus = telemetry.bus if telemetry is not None else None
        if self.autotuner is not None:
            self.autotuner.bind(self._bus)
        self.cancel_first_runs = cancel_first_runs
        self.poll_interval = poll_interval
        self.fallback_interval = (fallback_interval
                                  if fallback_interval is not None
                                  else max(poll_interval * 20, 0.1))
        self.timeout = timeout
        self.flush_interval = flush_interval
        #: SchedLab schedule policy: chooses which ready task is
        #: dispatched to a free worker, and orders the Coordinator's
        #: signal fan-out (all in the parent's control loop, so these
        #: decisions are deterministic even though body timing is not).
        self.policy = policy
        #: repro.sched discipline ordering the ready queue; the default
        #: FCFS reproduces the historical dispatch order (including the
        #: SchedLab "dispatch"-point policy choice) bit for bit.
        #: Imported lazily: repro.sched pulls in repro.telemetry, which
        #: reaches back into repro.runtime at import time.
        from ..sched import make_scheduler

        self.scheduler = make_scheduler(scheduler).bind(
            policy=policy, bus=self._bus, point="dispatch",
            workers=self.workers)
        # Per-run state (submissions, completion bookkeeping, telemetry
        # and autotuner binding) lives in a RunContext, shared shape
        # with the other backends; this single-shot executor owns one.
        self._ctx = RunContext(
            telemetry=telemetry, autotuner=self.autotuner,
            modulation=modulation, cancel_first_runs=cancel_first_runs,
            label="process-run")
        self._task_run: Dict[int, RegionRun] = {}
        self._task_index: Dict[int, Tuple[int, int]] = {}
        self._queued: set = set()
        self._idle: List[int] = []
        #: In-flight dispatches: dispatch_id -> (task, slot).  Messages
        #: whose dispatch_id is unknown are stale (respawned worker,
        #: previous pool lease) and are discarded.
        self._inflight: Dict[int, Tuple[FluidTask, int]] = {}
        #: id(task) -> its live dispatch_id (for cancellation routing).
        self._task_dispatch: Dict[int, int] = {}
        #: slot -> dispatch_ids still in flight there (dispatch order).
        self._slot_ids: Dict[int, List[int]] = {}
        #: Delta-aware payload export: per slot, the parent-side version
        #: of each cell as of its last shipment to that worker.  A cell
        #: whose version is unchanged is skipped at dispatch — the
        #: worker's copy already holds identical content.
        self._shipped: Dict[int, Dict[Tuple[int, str], int]] = {}
        #: Pool mode: pickled region factories by run index, re-sent to
        #: respawned workers.
        self._region_blobs: Dict[int, bytes] = {}
        self._respawns: Dict[int, int] = {}
        self._dispatch_counter = 0
        #: Created lazily on the first arena-eligible export, so code
        #: paths that never ship a large array never touch shared
        #: memory (and unit tests may drive _start_pool/_shutdown bare).
        self._arena: Optional[PayloadArena] = None
        self._leased = False
        self._epoch = 0.0
        self._started = False
        self._error: Optional[Exception] = None
        self._context = None
        self._processes: List = []
        self._inboxes: List = []
        self._outbox = None
        self._cancel_flags = None

    # ------------------------------------------------------------- public

    @property
    def _runs(self) -> List[RegionRun]:
        """Per-run region bookkeeping (``sync()`` duck-types on it)."""
        return self._ctx.runs

    def submit(self, region: FluidRegion,
               after: Iterable[FluidRegion] = ()) -> FluidRegion:
        self._ctx.submit(region, tuple(after))
        return region

    def run(self) -> RunResult:
        if self._started:
            raise SchedulerError("executors are single-shot; build a new one")
        self._started = True
        if not self._runs:
            return RunResult(0.0, [])
        self._start_pool()
        self._epoch = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.bind_clock(self.now, 1e6)
        deadline = self._epoch + self.timeout
        try:
            while True:
                self._try_launches()
                self._check_start_valves()
                self._dispatch_ready()
                if self._error is not None:
                    raise self._error
                if all(run.done for run in self._runs):
                    break
                self._drain_events()
                self._check_workers()
                if time.perf_counter() > deadline:
                    raise SchedulerError(
                        f"process backend timed out after {self.timeout}s: "
                        + self._diagnose())
        finally:
            self._shutdown()
            if self.telemetry is not None:
                self.telemetry.record_autotuner(self.autotuner)
                self.telemetry.record_scheduler(self.scheduler)
                self.telemetry.run_finished(self.now(), self.workers,
                                            now=self.now())
        makespan = time.perf_counter() - self._epoch
        return RunResult(makespan, [run.region for run in self._runs])

    # ---------------------------------------------------------- GuardHost

    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def schedule_run(self, task: FluidTask) -> None:
        self._enqueue(task)

    def request_cancel(self, task: FluidTask) -> None:
        super().request_cancel(task)
        dispatch_id = self._task_dispatch.get(id(task))
        if dispatch_id is None:
            return
        entry = self._inflight.get(dispatch_id)
        if entry is not None:
            # One flag per slot: a second cancellation on the same slot
            # overwrites the first.  Cancellation is advisory (a body
            # may finish before noticing the flag on every backend), so
            # the overwritten run simply completes and the parent-side
            # guard disposes of the result.
            self._cancel_flags[entry[1]] = dispatch_id

    def task_completed(self, task: FluidTask) -> None:
        run = self._task_run[id(task)]
        if not run.done and run.region.complete:
            run.done = True
            run.region.stats.makespan = self.now() - run.launch_time
            for sibling in run.region.tasks:
                sibling.stats.finish(self.now())
            if self._bus is not None:
                self._bus.emit(
                    "sched", run.region.name, "", "region-done",
                    data={"detail":
                          f"makespan={run.region.stats.makespan:.3f}"})
                emit_memo_summary(self._bus, run.region)

    def task_failed(self, task: FluidTask, error: Exception) -> None:
        if self._error is None:
            self._error = error

    def admit_dynamic_task(self, region: FluidRegion,
                           task: FluidTask) -> None:  # pragma: no cover
        raise SchedulerError(
            "the process backend does not support dynamic task graphs: "
            "a spawned body would exist only in the worker process")

    # ----------------------------------------------------- pool lifecycle

    def _start_pool(self) -> None:
        if self._pool is not None:
            # Lease before run() starts the clock: waiting for another
            # context to release the pool must not consume this run's
            # timeout budget.
            self._pool.lease()
            self._leased = True
            self._context = self._pool.context
            self._outbox = self._pool.outbox
            self._cancel_flags = self._pool.cancel_flags
            # Alias (never copy) the pool's lists: respawn() swaps the
            # crashed slot's entries in place and the executor must
            # observe the fresh process and inbox.
            self._inboxes = self._pool.inboxes
            self._processes = self._pool.processes
            self._idle = list(range(self.workers))
            self._slot_ids = {slot: [] for slot in range(self.workers)}
            return
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise SchedulerError(
                "the process backend needs the 'fork' start method "
                "(task bodies are closures and cannot be pickled); "
                "use the thread backend on this platform")
        context = multiprocessing.get_context("fork")
        self._context = context
        self._outbox = context.Queue()
        # "q" (int64), not "b": the flag carries a dispatch_id.
        self._cancel_flags = context.Array("q", self.workers, lock=False)
        for slot in range(self.workers):
            inbox = context.Queue()
            process = context.Process(
                target=self._worker_main, args=(slot, inbox),
                name=f"fluid-worker-{slot}", daemon=True)
            self._inboxes.append(inbox)
            self._processes.append(process)
        # Fork only after every queue exists and before the first put
        # spawns a feeder thread (forking a multi-threaded parent is
        # where fork-based pools go wrong).
        for process in self._processes:
            process.start()
        self._idle = list(range(self.workers))
        self._slot_ids = {slot: [] for slot in range(self.workers)}

    def _shutdown(self) -> None:
        try:
            if self._pool is not None:
                if self._leased:
                    self._reclaim_pool()
                return
            for inbox in self._inboxes:
                try:
                    inbox.put_nowait(None)
                except (ValueError, OSError, queue_module.Full):
                    pass  # queue already closed/broken or worker gone
                except Exception:
                    logger.exception(
                        "unexpected error sending worker shutdown")
            # One deadline covers the whole pool: joining N workers
            # sequentially with a per-process timeout used to stall
            # shutdown for N x timeout when the pool was wedged.
            # Workers that miss the graceful window are terminated in
            # one pass, then killed in one pass, each pass sharing a
            # single (shorter) deadline.
            self._join_all(self._processes, 0.5)
            stragglers = [p for p in self._processes if p.is_alive()]
            for process in stragglers:
                process.terminate()
            self._join_all(stragglers, 0.5)
            stubborn = [p for p in stragglers if p.is_alive()]
            for process in stubborn:  # pragma: no cover - stubborn worker
                process.kill()
            self._join_all(stubborn, 0.5)
            self._discard_pending_events()
            for channel in self._inboxes + ([self._outbox]
                                            if self._outbox else []):
                try:
                    channel.cancel_join_thread()
                    channel.close()
                except (ValueError, OSError):
                    pass  # already closed
                except Exception:
                    logger.exception("unexpected error closing worker queue")
        finally:
            # After worker teardown/reclaim: queued items may still
            # reference arena slots until then.
            if self._arena is not None:
                self._arena.close()
                self._arena = None

    def _reclaim_pool(self) -> None:
        """Return leased workers to the pool in a reusable state.

        Cancels anything still in flight, waits briefly for the workers
        to come back, respawns the wedged or dead ones, and resets every
        worker's region/arena caches (region indices are a per-run
        namespace).
        """
        pool = self._pool
        try:
            for slot, ids in self._slot_ids.items():
                if ids:
                    self._cancel_flags[slot] = _CANCEL_ALL

            def busy() -> List[int]:
                return [slot for slot, ids in self._slot_ids.items()
                        if ids and self._processes[slot].is_alive()]

            deadline = time.perf_counter() + _RECLAIM_GRACE
            while busy() and time.perf_counter() < deadline:
                try:
                    message = self._outbox.get(timeout=0.05)
                except (queue_module.Empty, OSError, ValueError):
                    continue
                if not message:
                    continue
                kind, slot, dispatch_id = message[:3]
                if kind in (_PROGRESS, _FINISHED, _CANCELLED):
                    for handle in message[6].values():
                        handle.discard()
                if kind in (_FINISHED, _CANCELLED, _ERROR):
                    ids = self._slot_ids.get(slot)
                    if ids and dispatch_id in ids:
                        ids.remove(dispatch_id)
            for slot in range(self.workers):
                if self._slot_ids.get(slot) or \
                        not self._processes[slot].is_alive():
                    pool.respawn(slot)
                    self._slot_ids[slot] = []
                self._cancel_flags[slot] = 0
            for inbox in self._inboxes:
                try:
                    inbox.put_nowait(("reset",))
                except Exception:  # pragma: no cover - torn-down queue
                    pass
            self._discard_pending_events()
            self._inflight.clear()
            self._task_dispatch.clear()
        finally:
            self._leased = False
            pool.release()

    @staticmethod
    def _join_all(processes, timeout: float) -> None:
        """Join ``processes`` under one shared deadline (not per-join)."""
        deadline = time.perf_counter() + timeout
        for process in processes:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            process.join(timeout=remaining)

    def _discard_pending_events(self) -> None:
        """Drop unapplied events, releasing any shared-memory payloads."""
        if self._outbox is None:
            return
        while True:
            try:
                message = self._outbox.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return
            if message and message[0] in (_PROGRESS, _FINISHED, _CANCELLED):
                for handle in message[6].values():
                    handle.discard()

    def _check_workers(self) -> None:
        for slot, ids in list(self._slot_ids.items()):
            if not ids:
                continue
            process = self._processes[slot]
            if process.is_alive():
                continue
            if self._pool is not None:
                self._respawn_slot(slot)
                continue
            task = self._inflight[ids[0]][0]
            run = self._task_run[id(task)]
            raise SchedulerError(
                f"worker {slot} died (exit code {process.exitcode}) "
                f"while running {run.region.name}/{task.name}")

    def _respawn_slot(self, slot: int) -> None:
        """Replace a crashed pool worker and re-dispatch its tasks."""
        process = self._processes[slot]
        self._respawns[slot] = self._respawns.get(slot, 0) + 1
        if self._respawns[slot] > _MAX_RESPAWNS:
            raise SchedulerError(
                f"pool worker {slot} crashed {self._respawns[slot]} times "
                f"(last exit code {process.exitcode}); giving up")
        if self._bus is not None:
            self._bus.emit("worker", "", "", "respawn",
                           data={"slot": slot,
                                 "exitcode": process.exitcode})
        ids = list(self._slot_ids.get(slot, ()))
        tasks: List[FluidTask] = []
        for dispatch_id in ids:
            entry = self._inflight.pop(dispatch_id, None)
            if entry is None:
                continue
            task = entry[0]
            if self._task_dispatch.get(id(task)) == dispatch_id:
                del self._task_dispatch[id(task)]
            tasks.append(task)
        self._slot_ids[slot] = []
        # The crashed body dirtied its local copies without a terminal
        # event; nothing shipped to this slot can be trusted.
        self._shipped.pop(slot, None)
        self._pool.respawn(slot)
        self._cancel_flags[slot] = 0
        self._install_blobs(slot)
        redispatch: List[FluidTask] = []
        for task in tasks:
            if task.state is TaskState.COMPLETE:
                continue  # completed by a cascade while in flight
            run = self._task_run[id(task)]
            if task.cancel_requested:
                # The worker died before acknowledging the cancellation;
                # resolve it parent-side exactly as a _CANCELLED reply
                # would have.
                run.coordinator.body_cancelled(task)
                continue
            if task.state is TaskState.RUNNING:
                redispatch.append(task)
        if redispatch:
            # Same run_index (RUNNING has no backward arc in Figure 5;
            # this is a retry of the same attempt, not a re-execution).
            self._send_batch(slot, redispatch, fresh=False)
        elif slot not in self._idle:
            self._idle.append(slot)

    def _install_blobs(self, slot: int) -> None:
        """(Re)send every launched region's factory to one pool worker."""
        for region_index, blob in self._region_blobs.items():
            self._inboxes[slot].put(("install", region_index, blob))

    # ------------------------------------------------- admission/dispatch

    def _try_launches(self) -> None:
        for run in self._runs:
            if run.launched:
                continue
            if any(not self._run_for(dep).done for dep in run.after):
                continue
            run.launched = True
            self._launch_region(run)

    def _run_for(self, region: FluidRegion) -> RegionRun:
        return self._ctx.run_for(region)

    def _launch_region(self, run: RegionRun) -> None:
        region = run.region
        graph = region.finalize()
        region.telemetry = self._bus
        if self._pool is not None:
            from .worker_pool import pool_blob

            blob = pool_blob(region)
            if blob is None:
                raise SchedulerError(
                    f"region {region.name!r} cannot run on a persistent "
                    "pool: it has no picklable remote_factory (pool "
                    "workers fork before regions exist; see "
                    "docs/runtime-semantics.md)")
            self._region_blobs[run.index] = blob
            for inbox in self._inboxes:
                inbox.put(("install", run.index, blob))
        run.launch_time = self.now()
        run.coordinator = Coordinator(self, graph, modulation=self.modulation,
                                      cancel_first_runs=self.cancel_first_runs,
                                      policy=self.policy, telemetry=self._bus)
        if self.autotuner is not None:
            # Parent-side, before any task reaches START_CHECK, so the
            # inherited position lands before the first valve verdict.
            self.autotuner.attach_region(region)
        if self._bus is not None:
            self._bus.emit("sched", region.name, "", "launch",
                           data={"detail": f"{len(graph)} tasks"})
        for task_index, task in enumerate(region.tasks):
            self._task_run[id(task)] = run
            self._task_index[id(task)] = (run.index, task_index)
            task.stats.enter(TaskState.INIT, self.now())
            task.transition(TaskState.START_CHECK, self.now())

    def _check_start_valves(self) -> None:
        for run in self._runs:
            if not run.launched or run.done:
                continue
            for task in run.region.tasks:
                if task.state is TaskState.START_CHECK and \
                        id(task) not in self._queued and \
                        task.start_valves_satisfied():
                    self._enqueue(task)

    def _enqueue(self, task: FluidTask) -> None:
        if id(task) not in self._queued:
            self._queued.add(id(task))
            # Never sheddable: dropping a Fluid task would deadlock its
            # region, so a bounded scheduler parks overflow instead.
            self.scheduler.submit(task, now=self.now())

    def _dispatch_ready(self) -> None:
        while self._idle and self.scheduler.pending():
            # _send_batch takes the *last* idle slot, so that is the
            # worker hint a work-stealing discipline should see.
            slot = self._idle[-1]
            # Batch only when more work is queued than workers are idle:
            # ceil(queued / idle) keeps dispatch breadth-first, so
            # batching never leaves a worker empty-handed.  batch_size=1
            # reproduces the historical one-task-per-message dispatch.
            cap = max(1, min(self.batch_size,
                             -(-len(self._queued) //
                               max(1, len(self._idle)))))
            batch: List[FluidTask] = []
            declined = False
            while len(batch) < cap and self.scheduler.pending():
                task = self.scheduler.pick(now=self.now(), worker=slot)
                if task is None:
                    declined = True
                    break
                self._queued.discard(id(task))
                if task.state not in (TaskState.START_CHECK,
                                      TaskState.WAITING,
                                      TaskState.DEP_STALLED):
                    continue  # completed (or started) while queued
                if self._skip_pointless_rerun(task):
                    continue
                if task.state is TaskState.START_CHECK and \
                        not task.start_valves_satisfied():
                    continue  # non-monotone valve flipped back off
                batch.append(task)
            if batch:
                self._send_batch(slot, batch)
            if declined:
                break

    def _skip_pointless_rerun(self, task: FluidTask) -> bool:
        """Early termination before the body even starts (Section 6.1)."""
        if not task.is_leaf and \
                task.state in (TaskState.WAITING, TaskState.DEP_STALLED) and \
                task.descendants_complete():
            self._task_run[id(task)].coordinator.skip_rerun(task)
            return True
        return False

    def _next_dispatch_id(self) -> int:
        if self._pool is not None:
            # Pool-global ids: unique across leases, so a stale message
            # from a previous lease can never alias a live dispatch.
            return self._pool.next_dispatch_id()
        self._dispatch_counter += 1
        return self._dispatch_counter

    def _send_batch(self, slot: int, tasks: List[FluidTask],
                    fresh: bool = True) -> None:
        if fresh:
            self._idle.remove(slot)
            self._cancel_flags[slot] = 0  # slot was idle: flag is stale
        shipped = self._shipped.setdefault(slot, {})
        ids = self._slot_ids.setdefault(slot, [])
        items = []
        # Cells produced by an earlier item of this batch: never ship
        # the parent's (older) snapshot over them — by the time a later
        # item installs its payloads, the worker-local copy is fresher.
        produced: set = set()
        for task in tasks:
            dispatch_id = self._next_dispatch_id()
            region_index, task_index = self._task_index[id(task)]
            region = self._runs[region_index].region
            self._inflight[dispatch_id] = (task, slot)
            self._task_dispatch[id(task)] = dispatch_id
            ids.append(dispatch_id)
            if fresh:
                task.transition(TaskState.RUNNING, self.now())
                task.begin_run()
            payloads = {}
            skipped = 0
            for data in tuple(task.spec.inputs) + tuple(task.spec.outputs):
                if data.name in payloads:
                    continue
                key = (region_index, data.name)
                if key in produced:
                    skipped += 1
                    continue
                if shipped.get(key) == data.version:
                    # Unchanged since the last shipment to this worker;
                    # its copy already holds identical bytes.  (Cells a
                    # body ran against on this slot are forgotten when
                    # the run ends, so worker-local dirt can never
                    # satisfy this test.)
                    skipped += 1
                    continue
                payloads[data.name] = self._export_cell(key, data)
                shipped[key] = data.version
            counts = {name: count.export_state()
                      for name, count in region.counts.items()}
            for data in task.spec.outputs:
                produced.add((region_index, data.name))
            items.append((dispatch_id, region_index, task_index,
                          task.run_index, payloads, counts))
            if self._bus is not None:
                if fresh:
                    self._bus.emit("sched", region.name, task.name, "run",
                                   data={"detail":
                                         f"attempt={task.run_index}"})
                self._bus.emit("worker", region.name, task.name, "dispatch",
                               data={"slot": slot})
                self._bus.emit(
                    "payload", region.name, task.name, "to-worker",
                    data={"bytes": sum(payload_nbytes(handle)
                                       for handle in payloads.values()),
                          "cells": len(payloads), "skipped": skipped})
        self._inboxes[slot].put(("runs", self.flush_interval, items))
        if self._bus is not None:
            first_region = self._runs[
                self._task_index[id(tasks[0])][0]].region
            self._bus.emit("worker", first_region.name, "", "batch",
                           data={"slot": slot, "size": len(items)})
        if fresh:
            for task in tasks:
                region = self._runs[self._task_index[id(task)][0]].region
                self._maybe_kill_worker(region, task, slot)

    def _export_cell(self, key: Tuple[int, str], data) -> object:
        """Export one cell for dispatch, through the arena when it fits."""
        if self.payload_arena:
            value = data.read()
            if self._arena is None and PayloadArena.eligible(value):
                self._arena = PayloadArena()
            if self._arena is not None:
                handle = self._arena.export(key, value)
                if handle is not None:
                    return handle
        return data.export_payload()

    def _maybe_kill_worker(self, region: FluidRegion, task: FluidTask,
                           slot: int) -> None:
        """SchedLab fault injection: SIGKILL the worker a task was just
        dispatched to, exercising the parent's dead-worker detection
        (``_check_workers`` surfaces it as a SchedulerError, or as a
        respawn in pool mode)."""
        fault_plan = getattr(region, "fault_plan", None)
        if fault_plan is None or not fault_plan.should_kill_worker(task):
            return
        import signal

        process = self._processes[slot]
        if process.is_alive() and process.pid:
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=1.0)

    # ----------------------------------------------------- event handling

    def _drain_events(self) -> None:
        if not self._await_activity():
            return
        while True:
            try:
                message = self._outbox.get_nowait()
            except queue_module.Empty:
                return
            self._apply_event(message)

    def _await_activity(self) -> bool:
        """Block until something happened: a worker message landed on the
        outbox, or a busy worker's process died (its sentinel became
        ready).  Event-driven — the old timed-``get`` spin remains only
        as a fallback for interpreters whose ``Queue`` lacks the
        ``_reader`` connection.  Returns True when the outbox may hold
        messages; the ``fallback_interval`` bound keeps the caller's
        deadline check live even if no event ever arrives."""
        reader = getattr(self._outbox, "_reader", None)
        if reader is None:
            # ``Queue._reader`` is a private CPython detail (the read
            # end of the queue's pipe); spawn-only platforms, alternate
            # interpreters or a future CPython may not expose it.  Fall
            # back to a timed get(): correctness is identical, wakeups
            # are poll-granular instead of event-driven, and a dead
            # worker is noticed by _check_workers rather than by its
            # sentinel.
            try:
                message = self._outbox.get(timeout=self.poll_interval)
            except queue_module.Empty:
                return False
            self._apply_event(message)
            return True
        from multiprocessing.connection import wait as connection_wait

        sentinels = [self._processes[slot].sentinel
                     for slot, ids in self._slot_ids.items() if ids]
        try:
            ready = connection_wait([reader] + sentinels,
                                    timeout=self.fallback_interval)
        except OSError:  # pragma: no cover - raced a worker teardown
            return False
        return reader in ready

    def _apply_event(self, message: Tuple) -> None:
        kind, slot, dispatch_id, region_index, task_index = message[:5]
        entry = self._inflight.get(dispatch_id)
        if entry is None:
            # Stale: the dispatch was dropped by a respawn, or belongs
            # to a previous lease of a shared pool.  Release transport
            # resources and move on.
            if kind in (_PROGRESS, _FINISHED, _CANCELLED):
                for handle in message[6].values():
                    handle.discard()
            return
        task = entry[0]
        run = self._runs[region_index]
        if self._bus is not None:
            if kind in (_PROGRESS, _FINISHED) and message[6]:
                self._bus.emit(
                    "payload", run.region.name, task.name, "from-worker",
                    data={"bytes": sum(payload_nbytes(handle)
                                       for handle in message[6].values()),
                          "cells": len(message[6])})
            if kind in (_FINISHED, _CANCELLED, _ERROR):
                self._bus.emit("worker", run.region.name, task.name, "free",
                               data={"slot": slot})
        if kind == _PROGRESS:
            if task.state is TaskState.COMPLETE:
                # Completed by a cascade while the body was still
                # running: a late flush must not clear `final` on cells
                # nobody will produce again.
                for handle in message[6].values():
                    handle.discard()
            else:
                self._apply_payloads(run.region, message[6])
            self._replay_counts(run.region, message[5])
            return
        # Terminal events retire the dispatch.  Forget the run's output
        # cells from the slot's shipped-version memo: the body mutated
        # its local copies, and a cancelled/errored run dirties them
        # *without* a parent-side version bump, so equality of versions
        # must not be trusted for them on the next dispatch.
        self._inflight.pop(dispatch_id, None)
        if self._task_dispatch.get(id(task)) == dispatch_id:
            del self._task_dispatch[id(task)]
        ids = self._slot_ids.get(slot)
        if ids is not None and dispatch_id in ids:
            ids.remove(dispatch_id)
        shipped = self._shipped.get(slot)
        if shipped is not None:
            for data in task.spec.outputs:
                shipped.pop((region_index, data.name), None)
        if self._cancel_flags[slot] == dispatch_id:
            # Only the cancelled dispatch's own terminal clears the
            # flag: a flag re-aimed at a batch-mate must survive until
            # the worker reaches that item.
            self._cancel_flags[slot] = 0
        if not ids:
            # The whole batch is accounted for; the worker is idle.
            self._idle.append(slot)
        if kind == _ERROR:
            exc_repr, tb_text = message[5], message[6]
            cause = RuntimeError(f"{exc_repr}\n{tb_text}")
            error = TaskBodyError(run.region.name, task.name,
                                  task.run_index, cause)
            error.__cause__ = cause
            run.coordinator.body_failed(task, error)
            return
        if task.state is TaskState.COMPLETE:
            # Completed concurrently by a cascade while the body was
            # still running remotely; its output will never be consumed,
            # but the count observations are real — replay them.
            for handle in message[6].values():
                handle.discard()
            self._replay_counts(run.region, message[5])
            return
        if kind == _FINISHED:
            # Order matters (mirrors the simulator's _body_done): install
            # the final payloads, mark outputs final via body_finished,
            # and only then publish the last count batch, so a consumer
            # whose valve flips on the final update observes final data.
            self._apply_payloads(run.region, message[6])
            task.transition(TaskState.END_CHECK, self.now())
            run.coordinator.body_finished(task)
            self._replay_counts(run.region, message[5])
        elif kind == _CANCELLED:
            for handle in message[6].values():
                handle.discard()
            run.coordinator.body_cancelled(task)
            self._replay_counts(run.region, message[5])

    def _apply_payloads(self, region: FluidRegion, payloads: Dict) -> None:
        for name, handle in payloads.items():
            region.datas[name].apply_payload(import_payload(handle))

    def _replay_counts(self, region: FluidRegion,
                       records: List[Tuple[str, Any]]) -> None:
        for name, value in records:
            region.counts[name].replay(value)

    # ------------------------------------------------------------- worker

    def _worker_main(self, slot: int, inbox) -> None:
        """Entry point of one forked worker: run bodies, stream updates."""
        loop = _WorkerLoop(slot, self._outbox, self._cancel_flags,
                           resolve=lambda index: self._runs[index].region)
        loop.serve(inbox)

    # ------------------------------------------------------------- debug

    def _diagnose(self) -> str:
        lines = []
        for run in self._runs:
            if run.done:
                continue
            for task in run.region.tasks:
                if task.state is not TaskState.COMPLETE:
                    lines.append(f"{run.region.name}/{task.name}={task.state}")
        busy = ", ".join(
            f"worker{slot}=" + ",".join(
                self._inflight[did][0].name
                for did in ids if did in self._inflight)
            for slot, ids in sorted(self._slot_ids.items()) if ids)
        return "; ".join(lines) + (f" [busy: {busy}]" if busy else "")
