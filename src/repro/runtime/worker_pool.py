"""Persistent worker pools: forked processes that outlive one executor.

:class:`~repro.runtime.process_backend.ProcessExecutor` is single-shot:
it forks its workers, runs its regions, and tears the pool down.  That
is the right lifecycle for one batch run, but ``FluidService`` and the
windowed ``repro.stream`` pipelines build a fresh process context per
request/window — paying a fork, a scheduler warm-up and a pool teardown
every time, which swamps small task bodies.

A :class:`PersistentProcessPool` is the standard reuse pattern (loky,
``concurrent.futures``): fork a set of generic workers once, then
*lease* them to a sequence of one-shot executors.  Because the workers
fork before any region exists, they cannot inherit task-body closures;
each region must instead provide a picklable ``remote_factory`` —
``(callable, args, kwargs)`` with a module-level callable that rebuilds
a structurally identical region (see
:class:`~repro.core.region.FluidRegion`).  :func:`pool_blob` checks a
region's factory for picklability so callers can fall back to the
fork-per-run path before committing.

Lifecycle contract
------------------

* ``lease()`` / ``release()`` — exclusive: one executor drives the
  workers at a time (serializing process contexts also avoids
  oversubscribing the physical cores the pool was sized to).  The
  executor resets every worker's region/arena caches before releasing.
* ``respawn(slot)`` — replaces a crashed worker with a fresh process
  *and a fresh inbox* (items queued to the dead worker must not replay
  on its replacement), swapping both into the shared lists in place so
  a leasing executor's aliases stay live.
* ``next_dispatch_id()`` — pool-global dispatch ids, unique across
  leases, so stale messages from a previous lease can never alias a
  live dispatch.
* ``close()`` — terminates the workers; idempotent.
"""

from __future__ import annotations

import logging
import os
import pickle
import queue as queue_module
import threading
import time
from typing import List, Optional

from ..core.errors import SchedulerError
from ..core.region import FluidRegion

logger = logging.getLogger(__name__)


def pool_blob(region: FluidRegion) -> Optional[bytes]:
    """Pickle a region's ``remote_factory`` for pool-worker installation.

    Returns None when the region has no factory or the factory does not
    pickle — the caller's cue to fall back to fork-per-run dispatch.
    """
    factory = getattr(region, "remote_factory", None)
    if factory is None:
        return None
    try:
        return pickle.dumps(factory)
    except Exception:
        return None


def _pool_worker_main(slot: int, inbox, outbox, cancel_flags) -> None:
    """Entry point of one pooled worker (module-level: survives fork)."""
    from .process_backend import _WorkerLoop

    _WorkerLoop(slot, outbox, cancel_flags).serve(inbox)


class PersistentProcessPool:
    """A reusable set of forked workers for the process backend.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    name:
        Prefix for the worker process names (diagnostics).
    """

    def __init__(self, workers: Optional[int] = None,
                 name: str = "fluid-pool"):
        import multiprocessing

        if workers is not None and workers < 1:
            raise SchedulerError("need at least one worker process")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SchedulerError(
                "persistent pools need the 'fork' start method "
                "(POSIX only); use the thread backend on this platform")
        self.workers = workers or (os.cpu_count() or 1)
        self.name = name
        self.context = multiprocessing.get_context("fork")
        self.outbox = self.context.Queue()
        # "q" (int64): the flag carries a dispatch_id (or -1 for all).
        self.cancel_flags = self.context.Array("q", self.workers, lock=False)
        #: Leasing executors alias these lists; respawn() mutates them
        #: in place so the aliases observe replacements.
        self.inboxes: List = []
        self.processes: List = []
        self._lease_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        for slot in range(self.workers):
            inbox = self.context.Queue()
            self.inboxes.append(inbox)
            self.processes.append(self._make_process(slot, inbox))
        # Fork only after every queue exists (same discipline as the
        # single-shot executor): no feeder threads at fork time.
        for process in self.processes:
            process.start()

    def _make_process(self, slot: int, inbox):
        return self.context.Process(
            target=_pool_worker_main,
            args=(slot, inbox, self.outbox, self.cancel_flags),
            name=f"{self.name}-{slot}", daemon=True)

    # -- leasing -----------------------------------------------------------

    def lease(self) -> "PersistentProcessPool":
        """Block until this pool is exclusively ours; returns the pool."""
        self._lease_lock.acquire()
        if self._closed:
            self._lease_lock.release()
            raise SchedulerError("pool is closed")
        return self

    def release(self) -> None:
        self._lease_lock.release()

    def next_dispatch_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    # -- health ------------------------------------------------------------

    def alive(self) -> List[bool]:
        """Per-slot health snapshot (diagnostics/tests)."""
        return [process.is_alive() for process in self.processes]

    def respawn(self, slot: int) -> None:
        """Replace one worker with a fresh process and a fresh inbox.

        The old inbox is abandoned, not drained: items queued to the
        dead worker must not replay on its replacement (the leasing
        executor re-dispatches what it still needs, with new ids).
        """
        old = self.processes[slot]
        if old.is_alive():
            old.terminate()
            old.join(timeout=1.0)
            if old.is_alive():  # pragma: no cover - stubborn worker
                old.kill()
                old.join(timeout=1.0)
        old_inbox = self.inboxes[slot]
        try:
            old_inbox.cancel_join_thread()
            old_inbox.close()
        except (ValueError, OSError):
            pass  # already closed
        inbox = self.context.Queue()
        process = self._make_process(slot, inbox)
        # In-place swap: leasing executors alias these lists.
        self.inboxes[slot] = inbox
        self.processes[slot] = process
        process.start()

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        for inbox in self.inboxes:
            try:
                inbox.put_nowait(None)
            except (ValueError, OSError, queue_module.Full):
                pass  # queue already closed/broken or worker gone
            except Exception:
                logger.exception("unexpected error sending pool shutdown")
        self._join_all(self.processes, 0.5)
        stragglers = [p for p in self.processes if p.is_alive()]
        for process in stragglers:
            process.terminate()
        self._join_all(stragglers, 0.5)
        stubborn = [p for p in stragglers if p.is_alive()]
        for process in stubborn:  # pragma: no cover - stubborn worker
            process.kill()
        self._join_all(stubborn, 0.5)
        for channel in self.inboxes + [self.outbox]:
            try:
                channel.cancel_join_thread()
                channel.close()
            except (ValueError, OSError):
                pass  # already closed
            except Exception:
                logger.exception("unexpected error closing pool queue")

    @staticmethod
    def _join_all(processes, timeout: float) -> None:
        deadline = time.perf_counter() + timeout
        for process in processes:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return
            process.join(timeout=remaining)

    def __enter__(self) -> "PersistentProcessPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
