"""The real-thread backend: one guard thread per Fluid task.

This backend mirrors the paper's implementation strategy directly: every
task gets its own guard thread that polls start valves, runs the body,
evaluates end conditions, and sleeps in W/D until signalled.  Under
CPython the GIL serializes the actual computation, so this backend
demonstrates *semantics* under genuine preemption and asynchrony — the
performance experiments use the virtual-time simulator instead (see
DESIGN.md, substitution table).

All guard decisions go through the same :class:`~repro.core.guard.Coordinator`
as the simulator, serialized by a per-pool lock, so the two backends
cannot diverge semantically.

Since the service refactor the guard machinery lives in
:class:`~repro.runtime.thread_pool.SharedThreadPool`, which hosts many
concurrent :class:`~repro.runtime.context.RunContext` runs over one
shared slot gate.  :class:`ThreadExecutor` is the historical single-shot
facade: one private pool, one context, the same public API and error
surface as ever — and, unlike the historical implementation, it joins
its guard threads on every exit path, so back-to-back runs no longer
leak threads.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Tuple

from ..core.errors import SchedulerError
from ..core.region import FluidRegion
from .context import RunContext
from .executor import Executor, RunResult
from .thread_pool import SharedThreadPool


class ThreadExecutor(Executor):
    """Executes regions with one OS guard thread per task (single-shot)."""

    def __init__(self, modulation: Optional[object] = None,
                 poll_interval: float = 0.002,
                 fallback_interval: Optional[float] = None,
                 timeout: float = 60.0,
                 cancel_first_runs: bool = False,
                 policy: Optional[object] = None,
                 telemetry: Optional[object] = None,
                 event_wakeups: bool = True,
                 scheduler: Optional[object] = None,
                 slots: Optional[int] = None,
                 autotune: Optional[object] = None):
        self.modulation = modulation
        # Closed-loop SLO autotuning (repro.tuning): needs a bus, so an
        # enabled tuner implies at least a lightweight Telemetry.  The
        # tuner's callback runs at bus publish points — all under the
        # pool lock, so its state needs no locking of its own.
        from ..tuning import make_autotuner
        self.autotuner = make_autotuner(autotune)
        if self.autotuner is not None and telemetry is None:
            from ..telemetry import Telemetry
            telemetry = Telemetry(metrics=False, chrome=False)
        #: Optional repro.telemetry.Telemetry; all publish points run
        #: under the pool lock, satisfying the bus serialization
        #: contract.
        self.telemetry = telemetry
        self._bus = telemetry.bus if telemetry is not None else None
        if self.autotuner is not None:
            self.autotuner.bind(self._bus)
        self.cancel_first_runs = cancel_first_runs
        self.poll_interval = poll_interval
        self.timeout = timeout
        #: SchedLab schedule policy.  Real threads cannot be ordered
        #: deterministically, so the policy contributes (a) seeded
        #: jitter at wake/publish points and (b) deterministic fan-out
        #: order inside the Coordinator (which runs under the lock).
        self.policy = policy
        self.slots = slots if slots is not None else 4
        self._pool = SharedThreadPool(
            slots=self.slots, scheduler=scheduler, policy=policy,
            bus=self._bus, poll_interval=poll_interval,
            fallback_interval=fallback_interval,
            event_wakeups=event_wakeups, name="thread-backend")
        #: Optional repro.sched discipline gating RUNNING entry behind
        #: ``slots`` concurrent run slots; ``None`` (default) keeps the
        #: historical ungated behaviour.
        self.scheduler = self._pool.scheduler
        #: Pool-wide stop event; also interrupts injected jitter sleeps
        #: (SchedLab relies on setting this directly in tests).
        self._stop = self._pool._stop
        self._ctx = RunContext(
            telemetry=telemetry, autotuner=self.autotuner,
            modulation=modulation, cancel_first_runs=cancel_first_runs,
            label="thread-run")
        self._started = False

    # Historical knobs, now owned by the pool but still part of the
    # executor's public surface.

    @property
    def fallback_interval(self) -> float:
        return self._pool.fallback_interval

    @fallback_interval.setter
    def fallback_interval(self, value: float) -> None:
        self._pool.fallback_interval = value

    @property
    def event_wakeups(self) -> bool:
        return self._pool.event_wakeups

    @property
    def _submissions(self) -> List[Tuple[FluidRegion, Tuple[FluidRegion, ...]]]:
        """Legacy per-run submission view (``sync()`` duck-types on it)."""
        return self._ctx.submissions

    # ------------------------------------------------------------- public

    def submit(self, region: FluidRegion,
               after: Iterable[FluidRegion] = ()) -> FluidRegion:
        self._ctx.submit(region, after)
        return region

    def run(self) -> RunResult:
        if self._started:
            raise SchedulerError("executors are single-shot; build a new one")
        self._started = True
        pool = self._pool
        pool.reset_epoch()
        try:
            pool.start(self._ctx)
            pool.wait(self._ctx, self.timeout)
        finally:
            # Stop and *join* the guard threads on every exit path
            # (normal, timeout or body error): a long-lived process
            # running executors back-to-back must not accumulate one
            # leaked daemon thread per task.  Also releases guards
            # parked in an injected jitter delay.
            pool.shutdown(join_timeout=min(self.timeout, 5.0))
            if self.telemetry is not None:
                self.telemetry.record_autotuner(self.autotuner)
                self.telemetry.record_scheduler(self.scheduler)
                # One worker: the GIL serializes the actual computation.
                self.telemetry.run_finished(self.now(), 1, now=self.now())
        makespan = time.perf_counter() - pool._epoch
        return RunResult(makespan, self._ctx.regions)

    # ----------------------------------------------------------- plumbing

    def now(self) -> float:
        return self._pool.now()

    def _sleep_jitter(self, point: str) -> None:
        self._pool._sleep_jitter(point)

    def _diagnose(self) -> str:
        return self._ctx.pending_description()
