"""The real-thread backend: one guard thread per Fluid task.

This backend mirrors the paper's implementation strategy directly: every
task gets its own guard thread that polls start valves, runs the body,
evaluates end conditions, and sleeps in W/D until signalled.  Under
CPython the GIL serializes the actual computation, so this backend
demonstrates *semantics* under genuine preemption and asynchrony — the
performance experiments use the virtual-time simulator instead (see
DESIGN.md, substitution table).

All guard decisions go through the same :class:`~repro.core.guard.Coordinator`
as the simulator, serialized by a per-executor lock, so the two backends
cannot diverge semantically.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.count import Count, UpdateSink
from ..core.errors import SchedulerError, TaskBodyError
from ..core.guard import Coordinator, GuardHost, ModulationPolicy
from ..core.region import FluidRegion
from ..core.states import TaskState
from ..core.task import FluidTask
from .executor import Executor, RunResult, emit_memo_summary


class _NotifyingSink(UpdateSink):
    """Dispatches count updates under the executor lock and wakes guards."""

    def __init__(self, executor: "ThreadExecutor"):
        self.executor = executor

    def count_updated(self, count: Count, value) -> None:
        self.executor._sleep_jitter("publish")
        with self.executor._lock:
            count.dispatch(value)
            self.executor._condition.notify_all()


class ThreadExecutor(Executor, GuardHost):
    """Executes regions with one OS guard thread per task."""

    def __init__(self, modulation: Optional[ModulationPolicy] = None,
                 poll_interval: float = 0.002,
                 fallback_interval: Optional[float] = None,
                 timeout: float = 60.0,
                 cancel_first_runs: bool = False,
                 policy: Optional[object] = None,
                 telemetry: Optional[object] = None,
                 event_wakeups: bool = True,
                 scheduler: Optional[object] = None,
                 slots: Optional[int] = None,
                 autotune: Optional[object] = None):
        self.modulation = modulation
        # Closed-loop SLO autotuning (repro.tuning): needs a bus, so an
        # enabled tuner implies at least a lightweight Telemetry.  The
        # tuner's callback runs at bus publish points — all under the
        # executor lock, so its state needs no locking of its own.
        from ..tuning import make_autotuner
        self.autotuner = make_autotuner(autotune)
        if self.autotuner is not None and telemetry is None:
            from ..telemetry import Telemetry
            telemetry = Telemetry(metrics=False, chrome=False)
        #: Optional repro.telemetry.Telemetry; all publish points run
        #: under the executor lock, satisfying the bus serialization
        #: contract.
        self.telemetry = telemetry
        self._bus = telemetry.bus if telemetry is not None else None
        if self.autotuner is not None:
            self.autotuner.bind(self._bus)
        self.cancel_first_runs = cancel_first_runs
        self.poll_interval = poll_interval
        #: Guards are woken by events — count publishes, data-cell bumps
        #: (Coordinator.enable_update_wakeups), scheduled re-runs and
        #: task completions all notify the condition — so the timed
        #: waits are a pure safety net, much coarser than the old
        #: poll_interval wake tick.
        self.fallback_interval = (fallback_interval
                                  if fallback_interval is not None
                                  else max(poll_interval * 25, 0.05))
        #: ``event_wakeups=False`` reverts to the legacy polling wake
        #: mechanism (no data-cell subscriptions; guards rediscover
        #: state on fallback ticks) — kept for A/B benchmarking of the
        #: event-driven runtime, not for production use.  Pair it with
        #: ``fallback_interval=poll_interval`` for the historical
        #: cadence.
        self.event_wakeups = event_wakeups
        self.timeout = timeout
        #: SchedLab schedule policy.  Real threads cannot be ordered
        #: deterministically, so the policy contributes (a) seeded
        #: jitter at wake/publish points to amplify interleaving
        #: diversity and (b) deterministic fan-out order inside the
        #: Coordinator (which runs under the executor lock).
        self.policy = policy
        #: Optional repro.sched discipline.  The thread backend has no
        #: central ready queue — guards self-schedule — so a scheduler
        #: is enforced by gating RUNNING entry behind ``slots``
        #: concurrent run slots; eligible guards queue with the
        #: scheduler and are granted slots in its order.  ``None``
        #: (default) keeps the historical ungated behaviour.
        self.slots = slots if slots is not None else 4
        if self.slots < 1:
            raise SchedulerError("thread backend needs at least one slot")
        self.scheduler = None
        if scheduler is not None:
            from ..sched import make_scheduler

            self.scheduler = make_scheduler(scheduler).bind(
                policy=policy, bus=self._bus, point="core",
                workers=self.slots)
        self._slots_free = self.slots
        #: id(task) -> slot reserved by _grant_slots, unclaimed so far.
        self._granted: set = set()
        #: id(task) currently parked in the scheduler's ready queue.
        self._slot_queued: set = set()
        self._lock = threading.RLock()
        self._condition = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._submissions: List[Tuple[FluidRegion, Tuple[FluidRegion, ...]]] = []
        self._done_regions: set = set()
        self._run_events: Dict[int, threading.Event] = {}
        self._threads: List[threading.Thread] = []
        self._epoch = 0.0
        self._started = False
        self._body_error: Optional[TaskBodyError] = None
        self._coordinators: Dict[int, Coordinator] = {}

    # ------------------------------------------------------------- public

    def submit(self, region: FluidRegion,
               after: Iterable[FluidRegion] = ()) -> FluidRegion:
        self._submissions.append((region, tuple(after)))
        return region

    def run(self) -> RunResult:
        if self._started:
            raise SchedulerError("executors are single-shot; build a new one")
        self._started = True
        self._epoch = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.bind_clock(self.now, 1e6)
        deadline = self._epoch + self.timeout
        sink = _NotifyingSink(self)
        launched: set = set()
        try:
            while True:
                with self._lock:
                    for region, after in self._submissions:
                        if id(region) in launched:
                            continue
                        if any(id(dep) not in self._done_regions
                               for dep in after):
                            continue
                        launched.add(id(region))
                        self._launch_region(region, sink)
                    if self._body_error is not None:
                        raise self._body_error
                    if len(self._done_regions) == len(self._submissions):
                        break
                    self._condition.wait(self.fallback_interval)
                if time.perf_counter() > deadline:
                    raise SchedulerError(
                        f"thread backend timed out after {self.timeout}s: "
                        + self._diagnose())
            for thread in self._threads:
                thread.join(self.timeout)
        finally:
            # Release guard threads parked in an injected jitter delay:
            # shutdown (normal, timeout or body error) must not wait for
            # a SchedLab sleep to run out.
            self._stop.set()
            if self.telemetry is not None:
                self.telemetry.record_autotuner(self.autotuner)
                self.telemetry.record_scheduler(self.scheduler)
                # One worker: the GIL serializes the actual computation.
                self.telemetry.run_finished(self.now(), 1, now=self.now())
        makespan = time.perf_counter() - self._epoch
        regions = [region for region, _after in self._submissions]
        return RunResult(makespan, regions)

    # ----------------------------------------------------------- plumbing

    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def schedule_run(self, task: FluidTask) -> None:
        # Called with the executor lock held (Coordinator serialization
        # contract), so the waiting guard cannot be between its
        # event-check and its condition wait: setting the event and
        # notifying under the same lock closes the lost-wakeup window.
        self._run_events[id(task)].set()
        self._condition.notify_all()

    def cell_updated(self, data) -> None:
        """A task body bumped (or finalized) a watched data cell: poke
        guards blocked in START_CHECK/W so valves over data contents are
        re-checked now, not at the next fallback tick.  (No injected
        jitter here: ``on_final`` watchers fire with the lock already
        held, where a SchedLab sleep would stall every guard.)"""
        with self._lock:
            self._condition.notify_all()

    def task_completed(self, task: FluidTask) -> None:
        region = task.region
        if region.complete and id(region) not in self._done_regions:
            self._done_regions.add(id(region))
            region.stats.makespan = self.now()
            for sibling in region.tasks:
                sibling.stats.finish(self.now())
            if self._bus is not None:
                self._bus.emit(
                    "sched", region.name, "", "region-done",
                    data={"detail": f"makespan={region.stats.makespan:.3f}"})
                emit_memo_summary(self._bus, region)
        self._condition.notify_all()

    def admit_dynamic_task(self, region: FluidRegion,
                           task: FluidTask) -> None:
        """A running task spawned ``task`` (dynamic graphs, Section 8).

        Called from a guard thread mid-body (outside the lock); guard
        creation is itself thread-safe."""
        coordinator = self._coordinators[id(region)]
        with self._lock:
            task.stats.enter(TaskState.INIT, self.now())
            self._run_events[id(task)] = threading.Event()
            if self.event_wakeups:
                coordinator.enable_update_wakeups()
            if self._bus is not None:
                self._bus.emit("sched", region.name, task.name, "spawn",
                               data={"detail": "dynamic"})
        thread = threading.Thread(
            target=self._guard_main, args=(task, coordinator),
            name=f"guard-{region.name}-{task.name}", daemon=True)
        self._threads.append(thread)
        thread.start()

    def _launch_region(self, region: FluidRegion, sink: UpdateSink) -> None:
        graph = region.finalize()
        region.bind_sink(sink)
        region.dynamic_host = self
        region.telemetry = self._bus
        coordinator = Coordinator(self, graph, modulation=self.modulation,
                                  cancel_first_runs=self.cancel_first_runs,
                                  policy=self.policy, telemetry=self._bus)
        if self.event_wakeups:
            coordinator.enable_update_wakeups()
        self._coordinators[id(region)] = coordinator
        if self.autotuner is not None:
            # Under the executor lock, before any guard thread starts:
            # the inherited position lands before the first start check.
            self.autotuner.attach_region(region)
        if self._bus is not None:
            self._bus.emit("sched", region.name, "", "launch",
                           data={"detail": f"{len(graph)} tasks"})
        for task in graph:
            task.stats.enter(TaskState.INIT, self.now())
            self._run_events[id(task)] = threading.Event()
            thread = threading.Thread(
                target=self._guard_main, args=(task, coordinator),
                name=f"guard-{region.name}-{task.name}", daemon=True)
            self._threads.append(thread)
            thread.start()

    # --------------------------------------------------------- guard thread

    def _sleep_jitter(self, point: str) -> None:
        """Policy-driven chaos: a tiny seeded delay before a wake point.

        The jitter amounts come from the policy's PRNG, so a seed sweep
        explores a diverse (if not replayable) set of real
        interleavings; with no policy this is a no-op on the hot path.
        Sleeps on the executor's stop event, not the wall clock, so
        shutdown (run() returning, a timeout, a body error) interrupts
        an in-flight delay instead of hanging for its full length.
        """
        if self.policy is None:
            return
        delay = self.policy.jitter(point)
        if delay > 0.0:
            self._stop.wait(delay)

    # ------------------------------------------------------- slot gating

    def _try_acquire_slot(self, task: FluidTask) -> bool:
        """Queue ``task`` with the scheduler and try to claim a run slot.

        Called with the lock held, only when a scheduler is configured
        and the task is otherwise eligible to run.  Every admission goes
        through ``submit``/``pick`` so the discipline's ordering, pick
        counts and queue-residence histogram all apply.  Executor
        submissions are never sheddable: dropping a Fluid task would
        deadlock its region, so a bounded scheduler parks overflow
        instead (see repro.sched.BoundedScheduler).
        """
        tid = id(task)
        if tid not in self._granted and tid not in self._slot_queued:
            self._slot_queued.add(tid)
            self.scheduler.submit(task, now=self.now())
        self._grant_slots()
        if tid in self._granted:
            self._granted.discard(tid)
            return True
        return False

    def _grant_slots(self) -> None:
        """Hand free slots to the scheduler's picks (lock held).

        Tasks that completed while queued (cascade completion) are
        skipped without consuming a slot.
        """
        while self._slots_free > 0 and self.scheduler.pending():
            picked = self.scheduler.pick(now=self.now(),
                                         worker=self._slots_free - 1)
            if picked is None:
                break
            self._slot_queued.discard(id(picked))
            if picked.state is TaskState.COMPLETE:
                continue
            self._slots_free -= 1
            self._granted.add(id(picked))
        self._condition.notify_all()

    def _release_slot(self) -> None:
        """Return a slot and immediately re-grant it (lock held)."""
        self._slots_free += 1
        self._grant_slots()

    def _drop_slot_claims(self, task: FluidTask) -> None:
        """A guard is exiting: free any slot it was granted but never
        claimed (lock held)."""
        tid = id(task)
        if tid in self._granted:
            self._granted.discard(tid)
            self._release_slot()
        self._slot_queued.discard(tid)

    def _guard_main(self, task: FluidTask, coordinator: Coordinator) -> None:
        """The per-task guard: Figure 5 driven by a real thread."""
        self._sleep_jitter(f"guard:{task.name}")
        with self._lock:
            if task.state is TaskState.INIT:
                task.transition(TaskState.START_CHECK, self.now())
            # The valve re-test and the wait both happen under the lock,
            # and every wake source (count publish, data bump, rerun,
            # completion) notifies under the same lock, so a bump between
            # the check and the wait cannot be lost; the timeout is a
            # pure fallback.
            while task.state is TaskState.START_CHECK and \
                    not task.start_valves_satisfied():
                self._condition.wait(self.fallback_interval)
        run_event = self._run_events[id(task)]
        while True:
            self._sleep_jitter(f"wake:{task.name}")
            with self._lock:
                if task.state is TaskState.COMPLETE:
                    if self.scheduler is not None:
                        self._drop_slot_claims(task)
                    return
                if self.scheduler is not None:
                    # Gated mode: the guard must win a run slot from the
                    # scheduler before it may enter RUNNING.  The run
                    # event is cleared only *after* the slot is granted,
                    # so a poke that arrives while the guard is queued
                    # is never lost.
                    if task.state is TaskState.START_CHECK:
                        eligible = task.start_valves_satisfied()
                    elif task.state in (TaskState.WAITING,
                                        TaskState.DEP_STALLED):
                        eligible = run_event.is_set()
                    else:  # pragma: no cover - defensive
                        eligible = False
                    if not eligible or not self._try_acquire_slot(task):
                        self._condition.wait(self.fallback_interval)
                        continue
                    # Slot held: re-validate, since the state may have
                    # moved while the guard sat in the ready queue.
                    if task.state is TaskState.START_CHECK:
                        task.transition(TaskState.RUNNING, self.now())
                    elif task.state in (TaskState.WAITING,
                                        TaskState.DEP_STALLED) and \
                            run_event.is_set():
                        run_event.clear()
                        task.transition(TaskState.RUNNING, self.now())
                    else:
                        self._release_slot()
                        continue
                elif task.state is TaskState.START_CHECK:
                    task.transition(TaskState.RUNNING, self.now())
                elif task.state in (TaskState.WAITING, TaskState.DEP_STALLED):
                    if not run_event.is_set():
                        # schedule_run sets the event and notifies under
                        # this lock, so the re-test on wake cannot miss
                        # a poke (lost-wakeup audit); the timeout is a
                        # fallback only.
                        self._condition.wait(self.fallback_interval)
                        continue
                    run_event.clear()
                    task.transition(TaskState.RUNNING, self.now())
                else:  # pragma: no cover - defensive
                    self._condition.wait(self.fallback_interval)
                    continue
                if self._bus is not None:
                    self._bus.emit(
                        "sched", task.region.name, task.name, "run",
                        data={"detail": f"attempt={task.run_index}"})
                ctx = task.begin_run()
                generator = task.make_generator(ctx)
            cancelled = self._consume(task, generator)
            with self._lock:
                if self.scheduler is not None:
                    self._release_slot()
                if task.state is TaskState.COMPLETE:
                    return  # completed concurrently (cascade)
                if cancelled:
                    coordinator.body_cancelled(task)
                else:
                    task.transition(TaskState.END_CHECK, self.now())
                    coordinator.body_finished(task)
                self._condition.notify_all()

    def _consume(self, task: FluidTask, generator) -> bool:
        """Run the body outside the lock; honour cooperative cancellation.

        A body exception is recorded and re-raised from :meth:`run` with
        task context, instead of silently killing the guard thread."""
        try:
            for _cost in generator:
                if task.cancel_requested:
                    generator.close()
                    return True
        except Exception as exc:
            region_name = task.region.name if task.region else "?"
            error = TaskBodyError(region_name, task.name,
                                  task.run_index, exc)
            error.__cause__ = exc
            with self._lock:
                if self._body_error is None:
                    self._body_error = error
                self._condition.notify_all()
            # Treat the failed run as cancelled so the guard thread winds
            # down cleanly; run() re-raises the recorded error.
            return True
        return False

    # ------------------------------------------------------------- debug

    def _diagnose(self) -> str:
        lines = []
        for region, _after in self._submissions:
            for task in region.tasks:
                if task.state is not TaskState.COMPLETE:
                    lines.append(f"{region.name}/{task.name}={task.state}")
        return "; ".join(lines) or "all tasks complete (region bookkeeping?)"
