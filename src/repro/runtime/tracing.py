"""Execution traces: a timeline of scheduler and guard events.

Traces serve two purposes: debugging fluidized programs (what re-executed
and why) and the residence-time statistics behind Table 3.  Tracing is
off by default; pass ``trace=True`` to an executor to collect one.

A :class:`Trace` can be fed directly via :meth:`Trace.record` or
attached to a :class:`~repro.telemetry.bus.TelemetryBus` with
:meth:`Trace.connect`, where it records the ``sched`` and ``guard``
event kinds — the same stream the executors used to write into it
directly, so pre-telemetry traces and bus-fed traces are line-for-line
identical.

For long soak runs, pass ``capacity=N`` to keep only the most recent
``N`` events in a ring buffer; :attr:`Trace.dropped` counts evictions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    time: float
    region: str
    task: str
    event: str
    detail: str


class Trace:
    """An append-only list of :class:`TraceEvent` with query helpers.

    ``capacity=None`` (the default) grows without bound; an integer
    capacity turns the store into a ring buffer that evicts the oldest
    event on overflow and counts the evictions in :attr:`dropped`.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("Trace capacity must be a positive integer")
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def record(self, time: float, region: str, task: str,
               event: str, detail: str = "") -> None:
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(time, region, task, event, detail))

    def connect(self, bus) -> "Trace":
        """Subscribe to a :class:`~repro.telemetry.bus.TelemetryBus`.

        Only ``sched`` and ``guard`` events are recorded — the kinds the
        executors historically wrote — so golden traces stay stable as
        new event kinds join the bus.
        """
        bus.subscribe(self._on_event)
        return self

    def _on_event(self, event) -> None:
        if event.kind in ("sched", "guard"):
            self.record(event.ts, event.region, event.task, event.name,
                        event.data.get("detail", ""))

    def for_task(self, task: str) -> List[TraceEvent]:
        return [e for e in self._events if e.task == task]

    def count(self, event: str, task: Optional[str] = None) -> int:
        return sum(1 for e in self._events
                   if e.event == event and (task is None or e.task == task))

    def render(self, limit: Optional[int] = None) -> str:
        lines = [f"{e.time:12.3f}  {e.region:<20} {e.task:<18} "
                 f"{e.event:<14} {e.detail}"
                 for e in self.events[:limit]]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)
