"""Execution traces: a timeline of scheduler and guard events.

Traces serve two purposes: debugging fluidized programs (what re-executed
and why) and the residence-time statistics behind Table 3.  Tracing is
off by default; pass ``trace=True`` to an executor to collect one.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    time: float
    region: str
    task: str
    event: str
    detail: str


class Trace:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def record(self, time: float, region: str, task: str,
               event: str, detail: str = "") -> None:
        self.events.append(TraceEvent(time, region, task, event, detail))

    def for_task(self, task: str) -> List[TraceEvent]:
        return [e for e in self.events if e.task == task]

    def count(self, event: str, task: Optional[str] = None) -> int:
        return sum(1 for e in self.events
                   if e.event == event and (task is None or e.task == task))

    def render(self, limit: Optional[int] = None) -> str:
        lines = [f"{e.time:12.3f}  {e.region:<20} {e.task:<18} "
                 f"{e.event:<14} {e.detail}"
                 for e in self.events[:limit]]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
