"""The discrete-event, virtual-time Fluid executor.

This backend plays the role of the paper's 20-core Xeon: task bodies are
Python generators whose yielded values are *virtual costs*; the simulator
interleaves runnable tasks over a configurable number of cores and
advances a virtual clock.  Because CPython's GIL makes real task
parallelism unreproducible in pure Python, all performance experiments in
this reproduction are run on this backend — the makespans it reports are
deterministic, seed-stable, and preserve the scheduling phenomena the
paper measures (producer/consumer overlap, valve-gated start times,
re-execution chains, core contention, guard overheads).

Visibility rule: the Python side effects of a chunk are applied when the
chunk's code runs, but counts are *published* (valves re-checked, guards
woken) only at the chunk's virtual completion time, so no task can react
to data "from the future".

Region scheduling is first-come-first-serve (Section 6.2): submitted
regions are admitted in order, as soon as their predecessor regions have
completed and an admission slot is free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.count import Count, UpdateSink
from ..core.errors import SchedulerError, TaskBodyError
from ..core.guard import Coordinator, GuardHost, ModulationPolicy
from ..core.region import FluidRegion
from ..core.states import TaskState
from ..core.task import FluidTask
from .context import RegionRun, RunContext
from .events import EventQueue
from .executor import Executor, RunResult
from .tracing import Trace


@dataclass
class Overheads:
    """Framework costs, in the same virtual-time units as chunk costs.

    ``task_init`` models the paper's guard-thread launch cost (the
    dominant overhead for K-means and Graph Coloring, Figure 11);
    ``end_check`` the quality-function evaluation; ``region_setup`` the
    per-region construction cost.  ``valve_check`` and ``signal`` are
    accounted into :attr:`RegionStats.overhead_time` but are too small to
    model as latency, matching the paper's observation that valve checks
    only show up as StartCheck residence time.
    """

    task_init: float = 1.0
    end_check: float = 0.5
    region_setup: float = 2.0
    valve_check: float = 0.01
    signal: float = 0.02
    #: Thread-pool mitigation (the paper's Section-3.3 limitation: "Using
    #: a thread-pool will clearly mitigate these overheads, but that
    #: feature is not yet supported").  With ``pool_size > 0`` only the
    #: first ``pool_size`` guard launches pay ``task_init``; every later
    #: task is dispatched onto an existing pooled guard for
    #: ``pool_dispatch``.
    pool_size: int = 0
    pool_dispatch: float = 0.0

    @classmethod
    def zero(cls) -> "Overheads":
        return cls(0.0, 0.0, 0.0, 0.0, 0.0)

    def guard_launch_cost(self, launches_so_far: int) -> float:
        """Cost of bringing up the guard for the next task."""
        if self.pool_size > 0 and launches_so_far >= self.pool_size:
            return self.pool_dispatch
        return self.task_init


class SimResult(RunResult):
    """Result of a simulated run, with trace access."""

    def __init__(self, makespan: float, regions, overhead_time: float,
                 trace: Optional[Trace]):
        super().__init__(makespan, regions, overhead_time)
        self.trace = trace


class _BufferingSink(UpdateSink):
    """Holds count updates until the surrounding chunk completes."""

    def __init__(self, executor: "SimExecutor"):
        self.executor = executor

    def count_updated(self, count: Count, value: Any) -> None:
        pending = self.executor._pending_updates
        if pending is None:
            # Updates outside a chunk (e.g. region build code) publish
            # immediately.
            count.dispatch(value)
        else:
            pending.append((count, value))


class SimExecutor(Executor, GuardHost):
    """Discrete-event executor with ``cores`` virtual processors."""

    def __init__(self, cores: int = 20,
                 overheads: Optional[Overheads] = None,
                 modulation: Optional[ModulationPolicy] = None,
                 max_active_regions: Optional[int] = None,
                 cancel_first_runs: bool = False,
                 trace: bool = False,
                 policy: Optional[Any] = None,
                 telemetry: Optional[Any] = None,
                 scheduler: Optional[Any] = None,
                 autotune: Optional[Any] = None):
        if cores < 1:
            raise SchedulerError("need at least one core")
        self.cores = cores
        self.overheads = overheads if overheads is not None else Overheads()
        self.cancel_first_runs = cancel_first_runs
        self.modulation = modulation
        self.max_active_regions = max_active_regions or cores
        # Instrumentation: an explicit Telemetry wins; plain trace=True
        # gets a lightweight one (trace only) so Trace keeps working as
        # before through the same bus plumbing.
        if telemetry is None and trace:
            from ..telemetry import Telemetry
            telemetry = Telemetry(metrics=False, chrome=False)
        # Closed-loop SLO autotuning (repro.tuning): needs a bus to hear
        # feedback events, so an enabled tuner implies at least a
        # lightweight Telemetry.  Lazy import, like repro.sched below.
        from ..tuning import make_autotuner
        self.autotuner = make_autotuner(autotune)
        if self.autotuner is not None and telemetry is None:
            from ..telemetry import Telemetry
            telemetry = Telemetry(metrics=False, chrome=False)
        self.telemetry = telemetry
        self._bus = telemetry.bus if telemetry is not None else None
        if self.autotuner is not None:
            self.autotuner.bind(self._bus)
        self.trace: Optional[Trace] = (
            telemetry.trace if telemetry is not None else None)
        #: SchedLab schedule policy: tie-breaks among simultaneous
        #: events, core allocation among ready tasks, and watcher wake
        #: order.  None keeps the historical deterministic FIFO order.
        self.policy = policy
        #: Ready-queue discipline (repro.sched): a Scheduler instance or
        #: spec string; None builds the paper-faithful FCFS, which
        #: reproduces the pre-scheduler runtime decision-for-decision
        #: (the SchedLab policy tie-breaks through it unchanged).
        from ..sched import make_scheduler
        self.scheduler = make_scheduler(scheduler).bind(
            policy=policy, bus=self._bus, point="core", workers=cores)

        self._queue = EventQueue(policy)
        self._now = 0.0
        # Core identities: a LIFO free pool so the scheduler's worker
        # hints (work-stealing) name the core about to be assigned.
        self._free_core_ids: List[int] = list(range(cores))
        self._task_core: Dict[int, int] = {}
        self._queued: Set[int] = set()
        self._pending_updates: Optional[List[Tuple[Count, Any]]] = None
        self._sink = _BufferingSink(self)
        # Per-run state (submissions, completion bookkeeping, telemetry
        # and autotuner binding) lives in a RunContext — the same
        # container the shared thread pool multiplexes many of; the
        # single-shot simulator owns exactly one.
        self._ctx = RunContext(
            telemetry=telemetry, autotuner=self.autotuner,
            modulation=modulation, cancel_first_runs=cancel_first_runs,
            label="sim-run")
        self._active_regions = 0
        self._task_region: Dict[int, RegionRun] = {}
        # count id -> {task id -> task}; a dict (not a set) so wakeup order
        # is insertion order, keeping runs deterministic.
        self._watchers: Dict[int, Dict[int, FluidTask]] = {}
        self._generators: Dict[int, Any] = {}
        # Per-task chunk event keys, built once per task: _advance runs
        # once per yielded chunk, and rebuilding ``f"chunk:{name}"``
        # there (a property read plus an f-string) was the simulator's
        # single hottest line under cProfile.
        self._chunk_keys: Dict[int, str] = {}
        self._guards_launched = 0
        self._started = False

    # ------------------------------------------------------------- public

    @property
    def _runs(self) -> List[RegionRun]:
        """Per-run region bookkeeping (``sync()`` duck-types on it)."""
        return self._ctx.runs

    def submit(self, region: FluidRegion,
               after: Iterable[FluidRegion] = ()) -> FluidRegion:
        self._ctx.submit(region, tuple(after))
        return region

    def run(self) -> SimResult:
        if self._started:
            raise SchedulerError("executors are single-shot; build a new one")
        self._started = True
        if self.telemetry is not None:
            # One virtual cost unit renders as one Perfetto microsecond.
            self.telemetry.bind_clock(lambda: self._now, 1.0)
        try:
            self._try_admissions()
            queue = self._queue
            while queue:
                time, callback = queue.pop()
                self._now = time
                callback()
        finally:
            if self.telemetry is not None:
                self.telemetry.record_autotuner(self.autotuner)
                self.telemetry.record_scheduler(self.scheduler)
                self.telemetry.run_finished(self._now, self.cores,
                                            now=self._now)
        incomplete = [run.region.name for run in self._runs if not run.done]
        if incomplete:
            raise SchedulerError(
                "simulation drained with incomplete regions "
                f"{incomplete}: {self._diagnose()}")
        overhead = sum(run.region.stats.overhead_time for run in self._runs)
        return SimResult(self._now, [run.region for run in self._runs],
                         overhead, self.trace)

    # -------------------------------------------------------- GuardHost

    def now(self) -> float:
        return self._now

    def schedule_run(self, task: FluidTask) -> None:
        self._acquire_core_or_queue(task)

    def task_completed(self, task: FluidTask) -> None:
        run = self._task_region[id(task)]
        if not run.done and run.region.complete:
            self._finish_region(run)

    def admit_dynamic_task(self, region: FluidRegion,
                           task: FluidTask) -> None:
        """A running task spawned ``task`` (dynamic graphs, Section 8)."""
        run = self._run_for(region)
        self._task_region[id(task)] = run
        task.stats.enter(TaskState.INIT, self._now)
        launch = self.overheads.guard_launch_cost(self._guards_launched)
        self._guards_launched += 1
        region.stats.overhead_time += launch
        self._queue.push(self._now + launch,
                         lambda: self._enter_start_check(task),
                         key=f"start:{task.name}")
        self._record("spawn", region.name, task.name, "dynamic")

    # ------------------------------------------------------- admission

    def _try_admissions(self) -> None:
        # FCFS: regions are considered strictly in submission order; a
        # region whose predecessors are unfinished blocks the ones behind
        # it only if the slot limit is reached.
        for run in self._runs:
            if run.launched:
                continue
            if self._active_regions >= self.max_active_regions:
                break
            if any(not self._run_for(dep).done for dep in run.after):
                continue
            run.launched = True
            self._active_regions += 1
            setup = self.overheads.region_setup
            run.region.stats.overhead_time += setup
            self._queue.push(self._now + setup,
                             lambda run=run: self._launch_region(run),
                             key=f"launch:{run.region.name}")

    def _run_for(self, region: FluidRegion) -> RegionRun:
        return self._ctx.run_for(region)

    def _launch_region(self, run: RegionRun) -> None:
        region = run.region
        graph = region.finalize()
        region.bind_sink(self._sink)
        region.dynamic_host = self
        region.telemetry = self._bus
        run.launch_time = self._now
        run.coordinator = Coordinator(
            self, graph, modulation=self.modulation,
            cancel_first_runs=self.cancel_first_runs,
            policy=self.policy, telemetry=self._bus)
        if self.autotuner is not None:
            # After finalize (valves exist), before the first start
            # check — the inherited position lands before any verdict.
            self.autotuner.attach_region(region)
        for task in graph:
            self._task_region[id(task)] = run
            task.stats.enter(TaskState.INIT, self._now)
            launch = self.overheads.guard_launch_cost(self._guards_launched)
            self._guards_launched += 1
            region.stats.overhead_time += launch
            self._queue.push(
                self._now + launch,
                lambda task=task: self._enter_start_check(task),
                key=f"start:{task.name}")
        self._record("launch", region.name, "", f"{len(graph)} tasks")

    def _finish_region(self, run: RegionRun) -> None:
        run.done = True
        self._active_regions -= 1
        run.region.stats.makespan = self._now - run.launch_time
        for task in run.region.tasks:
            task.stats.finish(self._now)
        self._record("region-done", run.region.name, "",
                     f"makespan={run.region.stats.makespan:.3f}")
        if self._bus is not None:
            from .executor import emit_memo_summary
            emit_memo_summary(self._bus, run.region)
        self._try_admissions()

    # ----------------------------------------------------------- guards

    def _enter_start_check(self, task: FluidTask) -> None:
        if task.state is not TaskState.INIT:
            return  # retired from INIT by a completion cascade
        task.transition(TaskState.START_CHECK, self._now)
        for valve in task.spec.start_valves:
            for count in valve.watched_counts:
                self._watchers.setdefault(id(count), {})[id(task)] = task
        self._watch_final_inputs(task)
        self._check_start(task)

    def _watch_final_inputs(self, task: FluidTask) -> None:
        # DataFinalValve-style conditions flip on mark_final, which emits
        # no count update; re-check the task whenever an input finalizes.
        for data in task.spec.inputs:
            data.on_final(lambda _data, task=task: self._recheck(task))

    def _recheck(self, task: FluidTask) -> None:
        if task.state is TaskState.START_CHECK:
            self._check_start(task)

    def _check_start(self, task: FluidTask) -> None:
        if task.state is not TaskState.START_CHECK:
            return
        run = self._task_region[id(task)]
        run.region.stats.overhead_time += (
            self.overheads.valve_check * max(1, len(task.spec.start_valves)))
        if task.start_valves_satisfied():
            self._acquire_core_or_queue(task)

    # ------------------------------------------------------------ cores

    def _acquire_core_or_queue(self, task: FluidTask) -> None:
        if id(task) in self._queued:
            return
        if self._skip_pointless_rerun(task):
            return
        if self._free_core_ids:
            self._begin_run(task)
        else:
            self._queued.add(id(task))
            self.scheduler.submit(task, now=self._now)

    def _release_core(self, finished: FluidTask) -> None:
        self._free_core_ids.append(self._task_core.pop(id(finished)))
        while self._free_core_ids and self.scheduler.pending():
            task = self.scheduler.pick(now=self._now,
                                       worker=self._free_core_ids[-1])
            if task is None:
                break
            self._queued.discard(id(task))
            if task.state not in (TaskState.START_CHECK, TaskState.WAITING,
                                  TaskState.DEP_STALLED):
                continue  # completed (or started) while queued
            if self._skip_pointless_rerun(task):
                continue
            if task.state is TaskState.START_CHECK and \
                    not task.start_valves_satisfied():
                # A non-monotone valve (e.g. convergence) flipped back off
                # while the task sat in the queue; a later count update
                # will re-check it.
                continue
            self._begin_run(task)

    def _skip_pointless_rerun(self, task: FluidTask) -> bool:
        """Early termination before the body even starts (Section 6.1)."""
        if not task.is_leaf and \
                task.state in (TaskState.WAITING, TaskState.DEP_STALLED) and \
                task.descendants_complete():
            run = self._task_region[id(task)]
            run.coordinator.skip_rerun(task)
            return True
        return False

    # ------------------------------------------------------------- body

    def _begin_run(self, task: FluidTask) -> None:
        key = id(task)
        self._queued.discard(key)
        self._task_core[key] = self._free_core_ids.pop()
        task.transition(TaskState.RUNNING, self._now)
        ctx = task.begin_run()
        generator = task.make_generator(ctx)
        self._generators[key] = generator
        if key not in self._chunk_keys:
            self._chunk_keys[key] = f"chunk:{task.name}"
        if self._bus is not None:
            self._record("run", task.region.name if task.region else "",
                         task.name, f"attempt={task.run_index}")
        self._advance(task)

    def _advance(self, task: FluidTask) -> None:
        """Execute the next chunk of ``task`` and schedule its completion."""
        if task.cancel_requested:
            self._generators.pop(id(task), None)
            self._release_core(task)
            run = self._task_region[id(task)]
            run.coordinator.body_cancelled(task)
            return
        generator = self._generators[id(task)]
        self._pending_updates = []
        try:
            cost = float(next(generator))
        except StopIteration:
            captured = self._pending_updates
            self._pending_updates = None
            self._body_done(task, captured)
            return
        except Exception as exc:
            self._pending_updates = None
            region_name = task.region.name if task.region else "?"
            raise TaskBodyError(region_name, task.name,
                                task.run_index, exc) from exc
        captured = self._pending_updates
        self._pending_updates = None
        if cost < 0:
            raise SchedulerError(
                f"task {task.name!r} yielded a negative cost {cost}")
        self._queue.push(self._now + cost,
                         lambda: self._chunk_done(task, captured),
                         key=self._chunk_keys[id(task)])

    def _chunk_done(self, task: FluidTask,
                    captured: List[Tuple[Count, Any]]) -> None:
        self._publish(captured)
        self._advance(task)

    def _body_done(self, task: FluidTask,
                   captured: List[Tuple[Count, Any]]) -> None:
        self._generators.pop(id(task), None)
        self._release_core(task)
        task.transition(TaskState.END_CHECK, self._now)
        run = self._task_region[id(task)]
        run.region.stats.overhead_time += self.overheads.end_check

        def finish():
            # Mark outputs final (body_finished -> finish_run) *before*
            # publishing the last chunk's count updates: a consumer whose
            # start valve flips on the final update must observe the
            # producer's data as final/precise, otherwise a fully
            # serialized schedule would still record imprecise starts and
            # re-execute spuriously.
            run.coordinator.body_finished(task)
            self._publish(captured)

        self._queue.push(self._now + self.overheads.end_check, finish,
                         key=f"end:{task.name}")

    # ---------------------------------------------------------- updates

    def _publish(self, captured: List[Tuple[Count, Any]]) -> None:
        if not captured:
            # Most chunks of compute-heavy bodies publish nothing;
            # skip the per-chunk set/list churn for them.
            return
        woken: Set[int] = set()
        to_wake: List[FluidTask] = []
        for count, value in captured:
            count.dispatch(value)
        for count, _value in captured:
            watchers = self._watchers.get(id(count))
            if not watchers:
                continue
            for task in tuple(watchers.values()):
                if id(task) not in woken:
                    woken.add(id(task))
                    to_wake.append(task)
        if self.policy is not None and len(to_wake) > 1:
            permutation = self.policy.order(
                "wake", [task.name for task in to_wake])
            to_wake = [to_wake[i] for i in permutation]
        for task in to_wake:
            self._recheck(task)

    # ------------------------------------------------------------ trace

    def _record(self, event: str, region: str, task: str, detail: str) -> None:
        if self._bus is not None:
            self._bus.emit("sched", region, task, event, ts=self._now,
                           data={"detail": detail})

    # ------------------------------------------------------------ debug

    def _diagnose(self) -> str:
        lines = []
        for run in self._runs:
            if run.done:
                continue
            for task in run.region.tasks:
                if task.state is not TaskState.COMPLETE:
                    valves = [f"{v.name}={v.check()}"
                              for v in task.spec.start_valves]
                    lines.append(f"{run.region.name}/{task.name} in "
                                 f"{task.state} valves={valves}")
        return "; ".join(lines) or "no pending tasks (admission stall?)"
