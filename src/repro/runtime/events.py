"""A deterministic discrete-event queue.

Events are ordered by ``(time, sequence)``; the sequence number makes
simultaneous events fire in insertion order, which keeps every run fully
deterministic (a requirement for regenerating the paper's tables).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple


class EventQueue:
    """A min-heap of timed callbacks."""

    def __init__(self):
        self._heap: List[Tuple[float, int, Callable[[], Any]]] = []
        self._sequence = 0

    def push(self, time: float, callback: Callable[[], Any]) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._sequence, callback))
        self._sequence += 1

    def pop(self) -> Tuple[float, Callable[[], Any]]:
        time, _seq, callback = heapq.heappop(self._heap)
        return time, callback

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
