"""A deterministic discrete-event queue.

Events are ordered by ``(time, sequence)``; the sequence number makes
simultaneous events fire in insertion order, which keeps every run fully
deterministic (a requirement for regenerating the paper's tables).

SchedLab hook: a :class:`~repro.schedlab.policy.SchedulePolicy` may be
attached to break ties among *simultaneous* events differently.  Virtual
time still dominates — the policy only chooses among events that carry
exactly the same timestamp — so every policy-driven run is a legal
timing of the same virtual-time execution.  With no policy attached the
queue behaves exactly as before (FIFO among ties).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..core.errors import StateError


class EventQueue:
    """A min-heap of timed callbacks with optional tie-break policy."""

    def __init__(self, policy: Optional[Any] = None):
        self._heap: List[Tuple[float, int, str, Callable[[], Any]]] = []
        self._sequence = 0
        #: SchedulePolicy consulted on pop() when >= 2 events tie on time.
        self.policy = policy

    def push(self, time: float, callback: Callable[[], Any],
             key: str = "") -> None:
        """Schedule ``callback`` at ``time``.

        ``key`` labels the event for schedule-exploration policies (task
        names make PCT-style priority policies meaningful); it is unused
        when no policy is attached.
        """
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._sequence, key, callback))
        self._sequence += 1

    def pop(self) -> Tuple[float, Callable[[], Any]]:
        if not self._heap:
            raise StateError(
                "pop from an empty EventQueue: the simulation has no "
                "pending events (all regions done, or an admission stall)")
        if self.policy is None:
            time, _seq, _key, callback = heapq.heappop(self._heap)
            return time, callback
        return self._pop_with_policy()

    def _pop_with_policy(self) -> Tuple[float, Callable[[], Any]]:
        """Collect every event tied at the minimum time and let the
        policy pick which fires; the rest go back on the heap with their
        original sequence numbers (so FIFO order is preserved among the
        survivors unless the policy reorders them again)."""
        time = self._heap[0][0]
        ties: List[Tuple[float, int, str, Callable[[], Any]]] = []
        while self._heap and self._heap[0][0] == time:
            ties.append(heapq.heappop(self._heap))
        if len(ties) == 1:
            return time, ties[0][3]
        index = self.policy.choose("event", [entry[2] for entry in ties])
        chosen = ties.pop(index)
        for entry in ties:
            heapq.heappush(self._heap, entry)
        return time, chosen[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
