"""Executor interface and the serial (non-Fluid) reference executor.

Every backend consumes finalized :class:`~repro.core.region.FluidRegion`
objects.  :func:`run_serial` executes a region the way the *original*,
non-fluidized program would: tasks run one at a time in topological
order, each consuming only final inputs.  Its makespan (the sum of all
chunk costs) and outputs are the baselines against which every fluid
result in the evaluation is normalized.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..core.count import ImmediateSink
from ..core.region import FluidRegion
from ..core.stats import RegionStats


class RunResult:
    """Common result shape for all executors."""

    def __init__(self, makespan: float, regions: Sequence[FluidRegion],
                 overhead_time: float = 0.0):
        self.makespan = makespan
        self.regions = list(regions)
        self.overhead_time = overhead_time

    def region(self, name: str) -> FluidRegion:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def stats(self) -> Dict[str, RegionStats]:
        return {region.name: region.stats for region in self.regions}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RunResult(makespan={self.makespan:.3f}, "
                f"regions={len(self.regions)})")


class Executor:
    """Interface implemented by the simulator and thread backends."""

    def submit(self, region: FluidRegion,
               after: Iterable[FluidRegion] = ()) -> FluidRegion:
        raise NotImplementedError

    def run(self) -> RunResult:
        raise NotImplementedError


def emit_memo_summary(bus, region: FluidRegion) -> None:
    """Publish one region's valve-memoization totals as a telemetry event.

    Memo-answered ``check()`` calls intentionally publish no per-call
    valve event (nothing was recomputed); the executors call this once
    at region completion so the skipped work is still observable —
    MetricsRegistry folds the event into the ``valve.checks.evaluated``
    and ``valve.checks.skipped`` counters.
    """
    evaluated = sum(valve.checks for valve in region.valves)
    skipped = sum(valve.checks_skipped for valve in region.valves)
    bus.emit("valve", region.name, "", "memo",
             data={"evaluated": evaluated, "skipped": skipped,
                   "valves": len(region.valves)})


#: Names accepted by :func:`make_executor` (and the bench ``--backend``
#: flag): the virtual-time simulator, the GIL-bound thread backend, and
#: the true-parallel multiprocessing backend.
BACKENDS = ("sim", "thread", "process")


def make_executor(backend: str, **kwargs) -> Executor:
    """Construct an executor by backend name.

    All three backends consume the same finalized regions and drive the
    same guard coordinator, so callers can treat the returned object
    uniformly; ``kwargs`` are forwarded to the backend constructor
    (each backend documents its own knobs).
    """
    if backend == "sim":
        from .simulator import SimExecutor

        return SimExecutor(**kwargs)
    if backend == "thread":
        from .thread_backend import ThreadExecutor

        return ThreadExecutor(**kwargs)
    if backend == "process":
        from .process_backend import ProcessExecutor

        return ProcessExecutor(**kwargs)
    from ..core.errors import SchedulerError

    raise SchedulerError(
        f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}")


class _SerialDynamicHost:
    """Collects tasks spawned during a serial run for later execution."""

    def __init__(self):
        self.pending: List = []

    def admit_dynamic_task(self, region, task) -> None:
        self.pending.append(task)


def run_serial(*regions: FluidRegion) -> RunResult:
    """Execute regions back-to-back, each task serially in topo order.

    This is the precise original program: no valves, no guards, no
    overlap, no framework overhead.  Outputs are exactly the conservative
    results, and the makespan is the sum of every chunk's cost.
    Dynamically spawned tasks (Section 8) are executed after the task
    that spawned them, preserving dataflow order.
    """
    from ..core.states import TaskState

    total = 0.0
    for region in regions:
        graph = region.finalize()
        region.bind_sink(ImmediateSink())
        host = _SerialDynamicHost()
        region.dynamic_host = host

        def execute(task):
            nonlocal total
            ctx = task.begin_run()
            generator = task.make_generator(ctx)
            task.state = TaskState.RUNNING   # so ctx.spawn() is legal
            for cost in generator:
                total += float(cost)
            task.finish_run()
            # Every input was final and precise, so the task completes
            # precisely; reflect that for downstream assertions.
            task.stats.enter(TaskState.INIT, total)
            task.state = TaskState.COMPLETE
            task.stats.enter(TaskState.COMPLETE, total)

        worklist = list(graph.topo_order())
        index = 0
        while index < len(worklist):
            execute(worklist[index])
            index += 1
            if host.pending:
                # Spawned tasks only consume data from tasks that already
                # ran (their producers include the spawner); append them
                # in spawn order.
                worklist.extend(host.pending)
                host.pending.clear()
        region.dynamic_host = None
        region.stats.makespan = total
    return RunResult(total, regions)
