"""Execution backends for Fluid regions.

* :class:`SimExecutor` — deterministic discrete-event simulation in
  virtual time (all performance experiments);
* :class:`ThreadExecutor` — one guard thread per task, real preemption
  (semantic validation; GIL-bound, see DESIGN.md);
* :func:`run_serial` — the precise original program, the baseline for
  every normalized number in the evaluation.
"""

from .events import EventQueue
from .executor import Executor, RunResult, run_serial
from .simulator import Overheads, SimExecutor, SimResult
from .thread_backend import ThreadExecutor
from .tracing import Trace, TraceEvent

__all__ = [
    "EventQueue", "Executor", "RunResult", "run_serial",
    "Overheads", "SimExecutor", "SimResult", "ThreadExecutor",
    "Trace", "TraceEvent",
]
