"""Execution backends for Fluid regions.

* :class:`SimExecutor` — deterministic discrete-event simulation in
  virtual time (all performance experiments);
* :class:`ThreadExecutor` — one guard thread per task, real preemption
  (semantic validation; GIL-bound, see DESIGN.md);
* :class:`ProcessExecutor` — task bodies on a pool of forked worker
  processes, true parallelism on real cores; guard decisions stay in
  the parent process;
* :func:`run_serial` — the precise original program, the baseline for
  every normalized number in the evaluation.

See the backend matrix in docs/runtime-semantics.md for capabilities
and when to use which; :func:`make_executor` builds one by name.
"""

from .context import RegionRun, RunContext
from .events import EventQueue
from .executor import BACKENDS, Executor, RunResult, make_executor, run_serial
from .process_backend import ProcessExecutor
from .simulator import Overheads, SimExecutor, SimResult
from .thread_backend import ThreadExecutor
from .thread_pool import SharedThreadPool
from .tracing import Trace, TraceEvent
from .worker_pool import PersistentProcessPool, pool_blob

__all__ = [
    "BACKENDS", "EventQueue", "Executor", "PersistentProcessPool",
    "RegionRun", "RunContext",
    "RunResult", "SharedThreadPool", "make_executor", "pool_blob",
    "run_serial",
    "Overheads", "ProcessExecutor", "SimExecutor", "SimResult",
    "ThreadExecutor", "Trace", "TraceEvent",
]
