"""ASCII Gantt rendering of simulated executions.

Turns a :class:`~repro.runtime.tracing.Trace` into a per-task timeline
so fluidized schedules can be inspected at a glance::

    region/task            |#####===R====ody....C        |
                            ^init   ^running  ^waiting

Legend: ``.`` init, ``=`` start-check (valve wait), ``#`` running,
``?`` end-check, ``w`` waiting, ``d`` dep-stalled, blank complete.
Re-executions show up as repeated ``#`` stretches on the same row —
exactly the phenomenon of the paper's Table 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.region import FluidRegion
from ..core.states import TaskState
from ..core.task import FluidTask

#: glyph per state
GLYPHS = {
    TaskState.INIT: ".",
    TaskState.START_CHECK: "=",
    TaskState.RUNNING: "#",
    TaskState.END_CHECK: "?",
    TaskState.WAITING: "w",
    TaskState.DEP_STALLED: "d",
    TaskState.COMPLETE: " ",
}


class TimelineRecorder:
    """Collects (time, state) transitions per task during a sim run.

    Attach before ``executor.run()``::

        recorder = TimelineRecorder()
        recorder.attach(region)
        executor.submit(region); executor.run()
        print(recorder.render(width=80))

    Alternatively, with telemetry enabled, subscribe to the bus instead
    of monkey-patching task transitions::

        telemetry = Telemetry()
        recorder = TimelineRecorder().connect(telemetry.bus)
        run_fluid(..., telemetry=telemetry)
    """

    def __init__(self):
        self._events: Dict[str, List[Tuple[float, TaskState]]] = {}
        self._tasks: List[Tuple[str, FluidTask]] = []

    def attach(self, region: FluidRegion) -> None:
        graph = region.finalize()
        for task in graph:
            label = f"{region.name}/{task.name}"
            self._tasks.append((label, task))
            self._events[label] = []
            self._hook(task, label)

    def connect(self, bus) -> "TimelineRecorder":
        """Feed the recorder from a telemetry bus's ``transition`` events.

        Rows appear lazily, in first-transition order, labelled
        ``region/task`` exactly as :meth:`attach` labels them.
        """
        bus.subscribe(self._on_event)
        return self

    def _on_event(self, event) -> None:
        if event.kind != "transition":
            return
        label = f"{event.region}/{event.task}"
        if label not in self._events:
            self._tasks.append((label, None))
            self._events[label] = []
        self._events[label].append((event.ts, TaskState[event.name]))

    def _hook(self, task: FluidTask, label: str) -> None:
        original = task.transition
        events = self._events[label]

        def recording_transition(new_state, now):
            original(new_state, now)
            events.append((now, new_state))

        task.transition = recording_transition  # type: ignore[assignment]

    # -- rendering -----------------------------------------------------------

    def span(self) -> float:
        last = 0.0
        for events in self._events.values():
            if events:
                last = max(last, events[-1][0])
        return last

    def render(self, width: int = 80,
               until: Optional[float] = None) -> str:
        until = until or self.span() or 1.0
        label_width = max((len(label) for label, _ in self._tasks),
                          default=8) + 1
        lines = [f"virtual time 0 .. {until:.1f} "
                 f"({until / width:.2f} units/char)"]
        for label, _task in self._tasks:
            lines.append(label.ljust(label_width) + "|"
                         + self._row(self._events[label], width, until)
                         + "|")
        lines.append("legend: .init  =start-check  #running  ?end-check  "
                     "w waiting  d dep-stalled")
        return "\n".join(lines)

    def _row(self, events: List[Tuple[float, TaskState]], width: int,
             until: float) -> str:
        if not events:
            return " " * width
        cells = []
        for column in range(width):
            time = (column + 0.5) * until / width
            state = self._state_at(events, time)
            cells.append(GLYPHS.get(state, " "))
        return "".join(cells)

    @staticmethod
    def _state_at(events: List[Tuple[float, TaskState]],
                  time: float) -> Optional[TaskState]:
        state: Optional[TaskState] = None
        for when, new_state in events:
            if when > time:
                break
            state = new_state
        return state

    # -- statistics ------------------------------------------------------------

    def runs_of(self, label: str) -> int:
        return sum(1 for _t, state in self._events.get(label, ())
                   if state is TaskState.RUNNING)
