"""Per-run state shared by every backend: :class:`RunContext`.

Historically each executor owned exactly one run: submissions, region
completion bookkeeping, the telemetry binding, the autotuner position
and (on the thread backend) guard threads and wake events all lived as
executor attributes, which is why executors are single-shot.  A
long-lived service that multiplexes many concurrent runs over one
shared backend pool needs that state split out per run.

:class:`RunContext` is that split: one context per logical ``run()`` —
a batch of regions with inter-region ``after`` dependencies — holding
everything that must be isolated between concurrent runs.  The one-shot
executors build a single private context; :class:`~repro.runtime.thread_pool.SharedThreadPool`
hosts many at once; :class:`repro.service.FluidService` creates one per
admitted request (or request batch).
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.errors import SchedulerError
from ..core.region import FluidRegion
from ..core.states import TaskState


class RegionRun:
    """Bookkeeping for one submitted region within a run context."""

    __slots__ = ("index", "region", "after", "coordinator", "launched",
                 "done", "launch_time")

    def __init__(self, index: int, region: FluidRegion,
                 after: Tuple[FluidRegion, ...]):
        self.index = index
        self.region = region
        self.after = after
        self.coordinator: Optional[object] = None
        self.launched = False
        self.done = False
        self.launch_time = 0.0


class RunContext:
    """Everything one run owns: regions, wake events, errors, telemetry.

    The context is a passive container — the hosting pool/executor
    mutates it under its own lock.  Fields that only the thread-based
    pool uses (``run_events``, ``threads``, ``active_guards``) stay
    empty on the simulator and process backends.
    """

    _labels = itertools.count(1)

    def __init__(self, *, label: Optional[str] = None,
                 telemetry: Optional[object] = None,
                 autotuner: Optional[object] = None,
                 modulation: Optional[object] = None,
                 cancel_first_runs: bool = False):
        self.label = label or f"run-{next(self._labels)}"
        #: Optional repro.telemetry.Telemetry bundle for this run.
        self.telemetry = telemetry
        self.bus = telemetry.bus if telemetry is not None else None
        #: Optional repro.tuning.ValveAutotuner steering this run's valves.
        self.autotuner = autotuner
        self.modulation = modulation
        self.cancel_first_runs = cancel_first_runs
        self.runs: List[RegionRun] = []
        #: id(region) -> Coordinator, one per launched region.
        self.coordinators: Dict[int, object] = {}
        #: id(task) -> threading.Event poked by schedule_run (thread pool).
        self.run_events: Dict[int, threading.Event] = {}
        #: Guard threads serving this context (thread pool); joined on
        #: completion so runs do not leak threads.
        self.threads: List[threading.Thread] = []
        #: Live guard threads still inside their main loop.
        self.active_guards = 0
        #: First body error (TaskBodyError on the thread pool, any
        #: executor error on one-shot pools); surfaced to the waiter /
        #: service future.
        self.body_error: Optional[Exception] = None
        #: Pool-clock time at which the context was started.
        self.epoch = 0.0
        #: Set when the context is cancelled (shutdown, timeout, error):
        #: guards drain instead of starting new work.
        self.stopped = False
        #: Set once every region is done (or the context stopped) and
        #: all guards have exited.
        self.finished = threading.Event()
        #: Called exactly once when ``finished`` is set, from the thread
        #: that finished the context (a guard thread on the thread pool).
        #: Must be cheap and non-blocking — the service uses it to hop
        #: back onto the asyncio loop via ``call_soon_threadsafe``.
        self.on_finished: Optional[Callable[["RunContext"], None]] = None

    # ------------------------------------------------------------ regions

    def submit(self, region: FluidRegion,
               after: Iterable[FluidRegion] = ()) -> RegionRun:
        run = RegionRun(len(self.runs), region, tuple(after))
        self.runs.append(run)
        return run

    def run_for(self, region: FluidRegion) -> RegionRun:
        for run in self.runs:
            if run.region is region:
                return run
        raise SchedulerError(
            f"region {region.name!r} given as an 'after' dependency was "
            "never submitted to this run")

    @property
    def regions(self) -> List[FluidRegion]:
        return [run.region for run in self.runs]

    @property
    def submissions(self) -> List[Tuple[FluidRegion, Tuple[FluidRegion, ...]]]:
        """Legacy view used by ``sync()`` and executor facades."""
        return [(run.region, run.after) for run in self.runs]

    @property
    def all_done(self) -> bool:
        return all(run.done for run in self.runs)

    # ------------------------------------------------------------ lifetime

    def join(self, timeout: Optional[float] = None) -> None:
        """Join this context's guard threads (one deadline overall)."""
        if not self.threads:
            return
        import time as _time
        deadline = (_time.perf_counter() + timeout
                    if timeout is not None else None)
        for thread in self.threads:
            if deadline is None:
                thread.join()
            else:
                remaining = deadline - _time.perf_counter()
                if remaining <= 0:
                    break
                thread.join(remaining)

    def pending_description(self) -> str:
        """Human-readable list of incomplete tasks, for diagnostics."""
        lines = []
        for run in self.runs:
            if not run.launched:
                lines.append(f"{run.region.name}=unlaunched")
                continue
            for task in run.region.tasks:
                if task.state is not TaskState.COMPLETE:
                    lines.append(
                        f"{run.region.name}/{task.name}={task.state}")
        return "; ".join(lines) or \
            "all tasks complete (region bookkeeping?)"
