"""A shared, long-lived thread-backend pool hosting many concurrent runs.

:class:`SharedThreadPool` is the multi-run generalization of the
historical ``ThreadExecutor``: the pool owns everything that can be
shared safely — the lock/condition pair, the stop event, the run-slot
gate and its ``repro.sched`` discipline, the wall clock — while every
run's private state (regions, wake events, coordinators, autotuner,
telemetry binding, guard threads, errors) lives in a
:class:`~repro.runtime.context.RunContext`.

One pool can therefore serve an arbitrary stream of contexts
concurrently — the substrate for :class:`repro.service.FluidService` —
and the single-shot :class:`~repro.runtime.thread_backend.ThreadExecutor`
is now a thin facade over a private pool with exactly one context.

Concurrency contract (unchanged from the single-run backend):

* every Coordinator call, state transition and count publish happens
  under the pool lock, so regions from different contexts can never
  observe each other's half-applied updates;
* counts/valves are per-region objects reached only through that
  region's tasks, so contexts are isolated by construction — the lock
  only serializes, it never shares state between them;
* guard threads are tracked per context and joined when the context
  finishes or the pool shuts down (long-lived services must not leak a
  thread per request).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from ..core.count import Count, UpdateSink
from ..core.errors import SchedulerError, TaskBodyError
from ..core.guard import Coordinator, GuardHost
from ..core.region import FluidRegion
from ..core.states import TaskState
from ..core.task import FluidTask
from .context import RunContext
from .executor import emit_memo_summary


class _PoolSink(UpdateSink):
    """Dispatches count updates under the pool lock and wakes guards."""

    def __init__(self, pool: "SharedThreadPool"):
        self.pool = pool

    def count_updated(self, count: Count, value) -> None:
        self.pool._sleep_jitter("publish")
        with self.pool._lock:
            count.dispatch(value)
            self.pool._condition.notify_all()


class _ContextHost(GuardHost):
    """Routes one context's Coordinator callbacks into the shared pool."""

    __slots__ = ("pool", "ctx")

    def __init__(self, pool: "SharedThreadPool", ctx: RunContext):
        self.pool = pool
        self.ctx = ctx

    def now(self) -> float:
        return self.pool.now()

    def schedule_run(self, task: FluidTask) -> None:
        # Called with the pool lock held (Coordinator serialization
        # contract): setting the event and notifying under the same
        # lock closes the lost-wakeup window.
        self.ctx.run_events[id(task)].set()
        self.pool._condition.notify_all()

    def cell_updated(self, data) -> None:
        self.pool._cell_updated()

    def task_completed(self, task: FluidTask) -> None:
        self.pool._task_completed(self.ctx, task)

    def admit_dynamic_task(self, region: FluidRegion,
                           task: FluidTask) -> None:
        self.pool._admit_dynamic_task(self.ctx, region, task)


class SharedThreadPool:
    """Hosts concurrent :class:`RunContext` runs over one guard-thread
    substrate with shared run-slot gating.

    ``slots``/``scheduler`` gate RUNNING entry exactly as on the
    single-run backend, except the gate now spans every active context:
    the scheduler sees one merged ready queue, which is what makes the
    pool a genuinely *shared* backend rather than N private executors.
    """

    def __init__(self, slots: int = 4,
                 scheduler: Optional[object] = None,
                 policy: Optional[object] = None,
                 bus: Optional[object] = None,
                 poll_interval: float = 0.002,
                 fallback_interval: Optional[float] = None,
                 event_wakeups: bool = True,
                 name: str = "pool"):
        if slots < 1:
            raise SchedulerError("thread pool needs at least one slot")
        self.name = name
        self.slots = slots
        self.policy = policy
        self.bus = bus
        self.poll_interval = poll_interval
        #: Guards are woken by events — count publishes, data-cell bumps
        #: (Coordinator.enable_update_wakeups), scheduled re-runs and
        #: task completions all notify the condition — so the timed
        #: waits are a pure safety net.
        self.fallback_interval = (fallback_interval
                                  if fallback_interval is not None
                                  else max(poll_interval * 25, 0.05))
        self.event_wakeups = event_wakeups
        self.scheduler = None
        if scheduler is not None:
            from ..sched import make_scheduler

            self.scheduler = make_scheduler(scheduler).bind(
                policy=policy, bus=bus, point="core", workers=slots)
        self._slots_free = slots
        #: id(task) -> slot reserved by _grant_slots, unclaimed so far.
        self._granted: set = set()
        #: id(task) currently parked in the scheduler's ready queue.
        self._slot_queued: set = set()
        self._lock = threading.RLock()
        self._condition = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._epoch = time.perf_counter()
        self._contexts: List[RunContext] = []
        self._sink = _PoolSink(self)
        self._closed = False

    # ------------------------------------------------------------- clock

    def now(self) -> float:
        return time.perf_counter() - self._epoch

    def reset_epoch(self) -> None:
        """Re-zero the pool clock (single-run facade compatibility)."""
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------ contexts

    def active_contexts(self) -> int:
        with self._lock:
            return len(self._contexts)

    def start(self, ctx: RunContext) -> None:
        """Admit a context: launch its dependency-free regions now.

        Regions with ``after`` dependencies launch as their
        predecessors complete (event-driven, from the completing guard).
        An empty context finishes immediately.
        """
        if ctx.telemetry is not None:
            ctx.telemetry.bind_clock(self.now, 1e6)
        with self._lock:
            if self._closed:
                raise SchedulerError(f"thread pool {self.name!r} is shut down")
            ctx.epoch = self.now()
            self._contexts.append(ctx)
            self._try_launches(ctx)
            self._maybe_finish(ctx)

    def wait(self, ctx: RunContext, timeout: float) -> None:
        """Block until ``ctx`` finishes; surface errors like ``run()``.

        Raises the first recorded :class:`TaskBodyError` as soon as it
        lands (without waiting for sibling guards to drain) and
        :class:`SchedulerError` on timeout.  Used by the single-shot
        facade; the async service listens on ``ctx.on_finished``
        instead.
        """
        deadline = time.perf_counter() + timeout
        with self._lock:
            while True:
                if ctx.body_error is not None:
                    raise ctx.body_error
                if ctx.finished.is_set():
                    return
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise SchedulerError(
                        f"thread backend timed out after {timeout}s: "
                        + ctx.pending_description())
                self._condition.wait(min(self.fallback_interval, remaining))

    def stop_context(self, ctx: RunContext) -> None:
        """Cancel a context: request body cancellation and drain guards.

        Guards notice ``ctx.stopped`` at their next wake and exit; the
        context finishes (and fires ``on_finished``) once the last one
        is gone.
        """
        with self._lock:
            if ctx.finished.is_set() or ctx.stopped:
                return
            ctx.stopped = True
            for run in ctx.runs:
                if not run.launched:
                    continue
                for task in run.region.tasks:
                    if task.state is not TaskState.COMPLETE:
                        task.cancel_requested = True
            self._condition.notify_all()
            self._maybe_finish(ctx)

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Stop every context, wake jitter sleeps, join all guards.

        One deadline covers all joins; guards are cooperative (bodies
        cancel at chunk boundaries) so stragglers past the deadline are
        daemonic and cannot wedge interpreter exit.  Idempotent.
        """
        with self._lock:
            self._closed = True
            contexts = list(self._contexts)
        for ctx in contexts:
            self.stop_context(ctx)
        self._stop.set()
        with self._lock:
            self._condition.notify_all()
        deadline = time.perf_counter() + join_timeout
        for ctx in contexts:
            ctx.join(max(0.0, deadline - time.perf_counter()))

    # ----------------------------------------------------------- plumbing

    def _sleep_jitter(self, point: str) -> None:
        """Policy-driven chaos: a tiny seeded delay before a wake point.

        Sleeps on the pool's stop event, not the wall clock, so
        shutdown interrupts an in-flight delay instead of hanging for
        its full length.
        """
        if self.policy is None:
            return
        delay = self.policy.jitter(point)
        if delay > 0.0:
            self._stop.wait(delay)

    def _cell_updated(self) -> None:
        """A task body bumped (or finalized) a watched data cell: poke
        guards blocked in START_CHECK/W so valves over data contents
        are re-checked now, not at the next fallback tick."""
        with self._lock:
            self._condition.notify_all()

    def _try_launches(self, ctx: RunContext) -> None:
        """Launch every region whose ``after`` set is done (lock held)."""
        if ctx.stopped:
            return
        for run in ctx.runs:
            if run.launched:
                continue
            if any(not ctx.run_for(dep).done for dep in run.after):
                continue
            run.launched = True
            run.launch_time = self.now()
            self._launch_region(ctx, run.region)

    def _launch_region(self, ctx: RunContext, region: FluidRegion) -> None:
        """Finalize a region and spawn its guard threads (lock held)."""
        graph = region.finalize()
        region.bind_sink(self._sink)
        host = _ContextHost(self, ctx)
        region.dynamic_host = host
        region.telemetry = ctx.bus
        coordinator = Coordinator(host, graph, modulation=ctx.modulation,
                                  cancel_first_runs=ctx.cancel_first_runs,
                                  policy=self.policy, telemetry=ctx.bus)
        if self.event_wakeups:
            coordinator.enable_update_wakeups()
        ctx.coordinators[id(region)] = coordinator
        if ctx.autotuner is not None:
            # Under the pool lock, before any guard thread starts: the
            # inherited position lands before the first start check.
            ctx.autotuner.attach_region(region)
        if ctx.bus is not None:
            ctx.bus.emit("sched", region.name, "", "launch",
                         data={"detail": f"{len(graph)} tasks"})
        for task in graph:
            task.stats.enter(TaskState.INIT, self.now())
            ctx.run_events[id(task)] = threading.Event()
            self._spawn_guard(ctx, task, coordinator)

    def _spawn_guard(self, ctx: RunContext, task: FluidTask,
                     coordinator: Coordinator) -> None:
        """Create, track and start one guard thread (lock held)."""
        thread = threading.Thread(
            target=self._guard_main, args=(ctx, task, coordinator),
            name=f"guard-{task.region.name}-{task.name}", daemon=True)
        ctx.threads.append(thread)
        ctx.active_guards += 1
        thread.start()

    def _admit_dynamic_task(self, ctx: RunContext, region: FluidRegion,
                            task: FluidTask) -> None:
        """A running task spawned ``task`` (dynamic graphs, Section 8).

        Called from a guard thread mid-body (outside the lock); guard
        creation is itself thread-safe."""
        coordinator = ctx.coordinators[id(region)]
        with self._lock:
            task.stats.enter(TaskState.INIT, self.now())
            ctx.run_events[id(task)] = threading.Event()
            if self.event_wakeups:
                coordinator.enable_update_wakeups()
            if ctx.bus is not None:
                ctx.bus.emit("sched", region.name, task.name, "spawn",
                             data={"detail": "dynamic"})
            self._spawn_guard(ctx, task, coordinator)

    def _task_completed(self, ctx: RunContext, task: FluidTask) -> None:
        """Region-completion bookkeeping + dependent-region launches
        (lock held, via the context host)."""
        region = task.region
        if region.complete:
            run = ctx.run_for(region)
            if not run.done:
                run.done = True
                region.stats.makespan = self.now() - ctx.epoch
                for sibling in region.tasks:
                    sibling.stats.finish(self.now())
                if ctx.bus is not None:
                    ctx.bus.emit(
                        "sched", region.name, "", "region-done",
                        data={"detail":
                              f"makespan={region.stats.makespan:.3f}"})
                    emit_memo_summary(ctx.bus, region)
                self._try_launches(ctx)
        self._condition.notify_all()

    def _maybe_finish(self, ctx: RunContext) -> None:
        """Finish the context once nothing is left to do (lock held).

        The completing guard itself still holds ``active_guards`` > 0
        when the last region completes, so the finish lands in that
        guard's exit path — after ``_task_completed`` already launched
        any dependent regions, which keeps the check race-free.
        """
        if ctx.finished.is_set() or ctx.active_guards > 0:
            return
        if not ctx.stopped and not ctx.all_done:
            return
        ctx.finished.set()
        if ctx in self._contexts:
            self._contexts.remove(ctx)
        self._condition.notify_all()
        if ctx.on_finished is not None:
            # Contract: cheap and non-blocking (e.g. call_soon_threadsafe);
            # runs under the pool lock in the finishing thread.
            ctx.on_finished(ctx)

    # ------------------------------------------------------- slot gating

    def _try_acquire_slot(self, task: FluidTask) -> bool:
        """Queue ``task`` with the scheduler and try to claim a run slot.

        Called with the lock held, only when a scheduler is configured
        and the task is otherwise eligible to run.  Every admission goes
        through ``submit``/``pick`` so the discipline's ordering, pick
        counts and queue-residence histogram all apply — across every
        active context, since the ready queue is pool-wide.  Guard
        submissions are never sheddable: dropping a Fluid task would
        deadlock its region, so a bounded scheduler parks overflow
        instead (see repro.sched.BoundedScheduler).
        """
        tid = id(task)
        if tid not in self._granted and tid not in self._slot_queued:
            self._slot_queued.add(tid)
            self.scheduler.submit(task, now=self.now())
        self._grant_slots()
        if tid in self._granted:
            self._granted.discard(tid)
            return True
        return False

    def _grant_slots(self) -> None:
        """Hand free slots to the scheduler's picks (lock held).

        Tasks that completed while queued (cascade completion) are
        skipped without consuming a slot.
        """
        while self._slots_free > 0 and self.scheduler.pending():
            picked = self.scheduler.pick(now=self.now(),
                                         worker=self._slots_free - 1)
            if picked is None:
                break
            self._slot_queued.discard(id(picked))
            if picked.state is TaskState.COMPLETE:
                continue
            self._slots_free -= 1
            self._granted.add(id(picked))
        self._condition.notify_all()

    def _release_slot(self) -> None:
        """Return a slot and immediately re-grant it (lock held)."""
        self._slots_free += 1
        self._grant_slots()

    def _drop_slot_claims(self, task: FluidTask) -> None:
        """A guard is exiting: free any slot it was granted but never
        claimed (lock held)."""
        tid = id(task)
        if tid in self._granted:
            self._granted.discard(tid)
            self._release_slot()
        self._slot_queued.discard(tid)

    # --------------------------------------------------------- guard main

    def _guard_main(self, ctx: RunContext, task: FluidTask,
                    coordinator: Coordinator) -> None:
        """The per-task guard: Figure 5 driven by a real thread."""
        try:
            self._run_guard(ctx, task, coordinator)
        finally:
            with self._lock:
                if self.scheduler is not None:
                    self._drop_slot_claims(task)
                ctx.active_guards -= 1
                self._maybe_finish(ctx)

    def _stopping(self, ctx: RunContext) -> bool:
        return ctx.stopped or self._stop.is_set()

    def _run_guard(self, ctx: RunContext, task: FluidTask,
                   coordinator: Coordinator) -> None:
        self._sleep_jitter(f"guard:{task.name}")
        with self._lock:
            if task.state is TaskState.INIT:
                task.transition(TaskState.START_CHECK, self.now())
            # The valve re-test and the wait both happen under the lock,
            # and every wake source (count publish, data bump, rerun,
            # completion, stop) notifies under the same lock, so a bump
            # between the check and the wait cannot be lost; the timeout
            # is a pure fallback.
            while task.state is TaskState.START_CHECK and \
                    not task.start_valves_satisfied():
                if self._stopping(ctx):
                    return
                self._condition.wait(self.fallback_interval)
        run_event = ctx.run_events[id(task)]
        while True:
            self._sleep_jitter(f"wake:{task.name}")
            with self._lock:
                if self._stopping(ctx):
                    return
                if task.state is TaskState.COMPLETE:
                    return
                if self.scheduler is not None:
                    # Gated mode: the guard must win a run slot from the
                    # scheduler before it may enter RUNNING.  The run
                    # event is cleared only *after* the slot is granted,
                    # so a poke that arrives while the guard is queued
                    # is never lost.
                    if task.state is TaskState.START_CHECK:
                        eligible = task.start_valves_satisfied()
                    elif task.state in (TaskState.WAITING,
                                        TaskState.DEP_STALLED):
                        eligible = run_event.is_set()
                    else:  # pragma: no cover - defensive
                        eligible = False
                    if not eligible or not self._try_acquire_slot(task):
                        self._condition.wait(self.fallback_interval)
                        continue
                    # Slot held: re-validate, since the state may have
                    # moved while the guard sat in the ready queue.
                    if task.state is TaskState.START_CHECK:
                        task.transition(TaskState.RUNNING, self.now())
                    elif task.state in (TaskState.WAITING,
                                        TaskState.DEP_STALLED) and \
                            run_event.is_set():
                        run_event.clear()
                        task.transition(TaskState.RUNNING, self.now())
                    else:
                        self._release_slot()
                        continue
                elif task.state is TaskState.START_CHECK:
                    task.transition(TaskState.RUNNING, self.now())
                elif task.state in (TaskState.WAITING, TaskState.DEP_STALLED):
                    if not run_event.is_set():
                        # schedule_run sets the event and notifies under
                        # this lock, so the re-test on wake cannot miss
                        # a poke (lost-wakeup audit); the timeout is a
                        # fallback only.
                        self._condition.wait(self.fallback_interval)
                        continue
                    run_event.clear()
                    task.transition(TaskState.RUNNING, self.now())
                else:  # pragma: no cover - defensive
                    self._condition.wait(self.fallback_interval)
                    continue
                if ctx.bus is not None:
                    ctx.bus.emit(
                        "sched", task.region.name, task.name, "run",
                        data={"detail": f"attempt={task.run_index}"})
                run_ctx = task.begin_run()
                generator = task.make_generator(run_ctx)
            cancelled = self._consume(ctx, task, generator)
            with self._lock:
                if self.scheduler is not None:
                    self._release_slot()
                if self._stopping(ctx):
                    return
                if task.state is TaskState.COMPLETE:
                    return  # completed concurrently (cascade)
                if cancelled:
                    coordinator.body_cancelled(task)
                else:
                    task.transition(TaskState.END_CHECK, self.now())
                    coordinator.body_finished(task)
                self._condition.notify_all()

    def _consume(self, ctx: RunContext, task: FluidTask, generator) -> bool:
        """Run the body outside the lock; honour cooperative cancellation.

        A body exception is recorded on the context and surfaced by the
        waiter (``run()`` / the service future), instead of silently
        killing the guard thread."""
        try:
            for _cost in generator:
                if task.cancel_requested:
                    generator.close()
                    return True
        except Exception as exc:
            region_name = task.region.name if task.region else "?"
            error = TaskBodyError(region_name, task.name,
                                  task.run_index, exc)
            error.__cause__ = exc
            with self._lock:
                if ctx.body_error is None:
                    ctx.body_error = error
                self._condition.notify_all()
            # Fail fast: cancel the rest of the context so its guards
            # drain instead of stalling on data the failed body will
            # never produce, then let the waiter surface the error.
            self.stop_context(ctx)
            return True
        return False
