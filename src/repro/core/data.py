"""Fluid data: versioned values that may be consumed before they are final.

A :class:`FluidData` cell is the unit of dataflow between Fluid tasks
(``#pragma data``).  While a producer is still running, the cell holds a
*partial* value; consumers whose start valves are satisfied may read it
anyway.  Three orthogonal pieces of state drive the runtime semantics of
Section 6.1 of the paper:

``version``
    Bumped on every write.  A task records the versions of its inputs when
    a run starts; "more accurate input is available" means the current
    version is greater than the recorded one.

``final``
    Set when the producing task finishes a run: no more updates will come
    from *that run*.  (A later re-execution of the producer clears and
    re-sets it.)

``precise``
    Set when the producing task finishes a run that itself started with
    all-precise inputs.  Precise data is exactly what a conservative,
    non-Fluid execution would have produced; the end-quality check is
    overridden for tasks that consumed only precise inputs (condition (ii)
    of the CE state).

Region inputs are non-Fluid and therefore born final and precise.

Granularity note: in the simulator backend, the Python-level writes of a
work chunk are applied when the chunk's code runs, but observers (valves,
waiting guards) only learn of them at the chunk's virtual completion time.
A concurrent reader can therefore see at most one chunk of "extra" data,
which only ever makes the consumed value *more* complete.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence


class FluidData:
    """Base class for a unit of (possibly partial) dataflow.

    Parameters
    ----------
    name:
        Identifier used in traces, graphs and diagnostics.
    value:
        Initial payload.  For region inputs pass the finished value and
        call :meth:`mark_input`.
    """

    def __init__(self, name: str, value: Any = None):
        self.name = name
        self._value = value
        self.version = 0
        self.final = False
        self.precise = False
        self.producer = None  # type: Optional[object]  # FluidTask, set by graph
        self._watchers: List[Callable[["FluidData"], None]] = []

    # -- lifecycle ---------------------------------------------------------

    def init(self, value: Any) -> None:
        """(Re)initialize the payload; mirrors ``d->init(...)`` in Fig. 3."""
        self._value = value
        self.version = 0
        self.final = False
        self.precise = False

    def mark_input(self) -> "FluidData":
        """Declare this cell a non-Fluid region input: final and precise."""
        self.final = True
        self.precise = True
        return self

    # -- producer-side API ---------------------------------------------------

    def write(self, value: Any) -> None:
        """Replace the whole payload with a newer partial value."""
        self._value = value
        self._bump()

    def touch(self) -> None:
        """Record an in-place mutation of the payload (arrays, graphs...)."""
        self._bump()

    def _bump(self) -> None:
        self.version += 1
        self.final = False
        self.precise = False

    def mark_final(self, precise: bool) -> None:
        """Called by the runtime when the producing run completes."""
        self.final = True
        self.precise = precise
        for watcher in list(self._watchers):
            watcher(self)

    # -- consumer-side API ---------------------------------------------------

    def read(self) -> Any:
        """Return the current (possibly partial) payload.

        Only Fluid methods may call this before :attr:`final` is set; the
        framework does not police the convention at runtime (tasks created
        through a region only ever receive the data cells listed in their
        ``inputs``), but :meth:`read_final` is provided for non-Fluid code.
        """
        return self._value

    def read_final(self) -> Any:
        """Read for non-Fluid consumers: requires the value to be final."""
        from .errors import DataError

        if not self.final:
            raise DataError(
                f"non-Fluid read of {self.name!r} while still partial "
                f"(version={self.version})")
        return self._value

    # -- observation ---------------------------------------------------------

    def on_final(self, watcher: Callable[["FluidData"], None]) -> None:
        self._watchers.append(watcher)

    def snapshot(self) -> "DataSnapshot":
        """Capture version/precision for run-start bookkeeping."""
        return DataSnapshot(self.version, self.final, self.precise)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(flag for flag, on in
                        (("F", self.final), ("P", self.precise)) if on)
        return f"FluidData({self.name}, v{self.version}{',' + flags if flags else ''})"


class DataSnapshot:
    """Immutable record of a data cell's state at a task's run start."""

    __slots__ = ("version", "final", "precise")

    def __init__(self, version: int, final: bool, precise: bool):
        self.version = version
        self.final = final
        self.precise = precise

    def advanced_in(self, data: FluidData) -> bool:
        """Has ``data`` gained information since this snapshot was taken?"""
        return data.version > self.version or (data.precise and not self.precise)


class FluidScalar(FluidData):
    """A single approximable value (e.g. a running minimum)."""


class FluidArray(FluidData):
    """A 1-D array of Fluid elements (the paper's only aggregate type).

    Multi-dimensional data is expressed by user-side index arithmetic, as
    in the paper (Section 3.3, limitation five).  The payload may be any
    mutable sequence, including a :class:`numpy.ndarray`.
    """

    def __init__(self, name: str, value: Optional[Sequence] = None):
        super().__init__(name, value)

    def __len__(self) -> int:
        return 0 if self._value is None else len(self._value)

    def __getitem__(self, index):
        return self._value[index]

    def __setitem__(self, index, value) -> None:
        self._value[index] = value
        self._bump()

    def fill_slice(self, start: int, stop: int, values) -> None:
        """Bulk-update ``payload[start:stop]`` as one versioned write."""
        self._value[start:stop] = values
        self._bump()
