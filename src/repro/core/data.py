"""Fluid data: versioned values that may be consumed before they are final.

A :class:`FluidData` cell is the unit of dataflow between Fluid tasks
(``#pragma data``).  While a producer is still running, the cell holds a
*partial* value; consumers whose start valves are satisfied may read it
anyway.  Three orthogonal pieces of state drive the runtime semantics of
Section 6.1 of the paper:

``version``
    Bumped on every write.  A task records the versions of its inputs when
    a run starts; "more accurate input is available" means the current
    version is greater than the recorded one.

``final``
    Set when the producing task finishes a run: no more updates will come
    from *that run*.  (A later re-execution of the producer clears and
    re-sets it.)

``precise``
    Set when the producing task finishes a run that itself started with
    all-precise inputs.  Precise data is exactly what a conservative,
    non-Fluid execution would have produced; the end-quality check is
    overridden for tasks that consumed only precise inputs (condition (ii)
    of the CE state).

Region inputs are non-Fluid and therefore born final and precise.

Granularity note: in the simulator backend, the Python-level writes of a
work chunk are applied when the chunk's code runs, but observers (valves,
waiting guards) only learn of them at the chunk's virtual completion time.
A concurrent reader can therefore see at most one chunk of "extra" data,
which only ever makes the consumed value *more* complete.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

#: Numpy payloads at or above this many bytes cross process boundaries
#: through :mod:`multiprocessing.shared_memory` instead of pickling
#: through a pipe (see :func:`export_payload`).
PAYLOAD_SHM_MIN_BYTES = 1 << 16


class FluidData:
    """Base class for a unit of (possibly partial) dataflow.

    Parameters
    ----------
    name:
        Identifier used in traces, graphs and diagnostics.
    value:
        Initial payload.  For region inputs pass the finished value and
        call :meth:`mark_input`.
    """

    def __init__(self, name: str, value: Any = None):
        self.name = name
        self._value = value
        self.version = 0
        self.final = False
        self.precise = False
        self.producer = None  # type: Optional[object]  # FluidTask, set by graph
        self.region = None  # type: Optional[object]  # FluidRegion backref
        self._watchers: List[Callable[["FluidData"], None]] = []
        self._update_watchers: List[Callable[["FluidData"], None]] = []

    # -- lifecycle ---------------------------------------------------------

    def init(self, value: Any) -> None:
        """(Re)initialize the payload; mirrors ``d->init(...)`` in Fig. 3."""
        self._value = value
        self.version = 0
        self.final = False
        self.precise = False

    def mark_input(self) -> "FluidData":
        """Declare this cell a non-Fluid region input: final and precise."""
        self.final = True
        self.precise = True
        return self

    # -- producer-side API ---------------------------------------------------

    def write(self, value: Any) -> None:
        """Replace the whole payload with a newer partial value."""
        self._value = value
        self._bump()

    def touch(self) -> None:
        """Record an in-place mutation of the payload (arrays, graphs...)."""
        self._bump()

    def _bump(self) -> None:
        self.version += 1
        self.final = False
        self.precise = False
        if self._update_watchers:
            for watcher in list(self._update_watchers):
                watcher(self)

    def mark_final(self, precise: bool) -> None:
        """Called by the runtime when the producing run completes."""
        self.final = True
        self.precise = precise
        for watcher in list(self._watchers):
            watcher(self)

    # -- consumer-side API ---------------------------------------------------

    def read(self) -> Any:
        """Return the current (possibly partial) payload.

        Only Fluid methods may call this before :attr:`final` is set; the
        framework does not police the convention at runtime (tasks created
        through a region only ever receive the data cells listed in their
        ``inputs``), but :meth:`read_final` is provided for non-Fluid code.
        """
        return self._value

    def read_final(self) -> Any:
        """Read for non-Fluid consumers: requires the value to be final."""
        from .errors import DataError

        if not self.final:
            raise DataError(
                f"non-Fluid read of {self.name!r} while still partial "
                f"(version={self.version})")
        return self._value

    # -- observation ---------------------------------------------------------

    def on_final(self, watcher: Callable[["FluidData"], None]) -> None:
        self._watchers.append(watcher)

    def on_update(self, watcher: Callable[["FluidData"], None]) -> None:
        """Register ``watcher(data)`` for every version bump.

        Fires on each :meth:`write`/:meth:`touch`/element write, *before*
        the producing run completes — the wakeup hook for event-driven
        backends (``on_final`` only fires at run completion).
        """
        self._update_watchers.append(watcher)

    def snapshot(self) -> "DataSnapshot":
        """Capture version/precision for run-start bookkeeping."""
        return DataSnapshot(self.version, self.final, self.precise)

    # -- cross-process payload exchange --------------------------------------

    def export_payload(self) -> "PayloadHandle":
        """Capture the current payload as a picklable handle.

        The handle can cross a process boundary; large numpy payloads go
        through a shared-memory buffer instead of the pickle stream.
        """
        return export_payload(self._value)

    def apply_payload(self, value: Any, bump: bool = True) -> None:
        """Install a payload received from another process.

        Mutates the existing payload object *in place* whenever possible
        (same-shape arrays, lists, bytearrays) so that closures holding a
        direct reference to the payload — task bodies, end-valve
        predicates, app-side output accessors — keep observing updates.
        Falls back to rebinding for scalars and shape changes.

        Rebinding a *container* payload (array/list/bytearray whose shape
        or type changed) is a contract hazard: closures holding the old
        object keep observing the stale payload.  Such rebinds emit a
        ``payload``/``rebound`` telemetry event on the owning region's
        bus so the hazard is diagnosable; see ``docs/api.md``.
        """
        current = self._value
        if not _copy_in_place(current, value):
            self._value = value
            if _is_aliasable(current):
                self._note_rebound(current, value)
        if bump:
            self._bump()

    def _note_rebound(self, old: Any, new: Any) -> None:
        """Report that an aliasable payload was rebound, not copied into."""
        telemetry = getattr(self.region, "telemetry", None)
        if telemetry is not None:
            telemetry.emit("payload", getattr(self.region, "name", ""), "",
                           "rebound",
                           data={"cell": self.name,
                                 "version": self.version,
                                 "from_type": type(old).__name__,
                                 "to_type": type(new).__name__,
                                 "from_shape": _shape_of(old),
                                 "to_shape": _shape_of(new)})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(flag for flag, on in
                        (("F", self.final), ("P", self.precise)) if on)
        return f"FluidData({self.name}, v{self.version}{',' + flags if flags else ''})"


class DataSnapshot:
    """Immutable record of a data cell's state at a task's run start."""

    __slots__ = ("version", "final", "precise")

    def __init__(self, version: int, final: bool, precise: bool):
        self.version = version
        self.final = final
        self.precise = precise

    def advanced_in(self, data: FluidData) -> bool:
        """Has ``data`` gained information since this snapshot was taken?"""
        return data.version > self.version or (data.precise and not self.precise)


class FluidScalar(FluidData):
    """A single approximable value (e.g. a running minimum)."""


class FluidArray(FluidData):
    """A 1-D array of Fluid elements (the paper's only aggregate type).

    Multi-dimensional data is expressed by user-side index arithmetic, as
    in the paper (Section 3.3, limitation five).  The payload may be any
    mutable sequence, including a :class:`numpy.ndarray`.
    """

    def __init__(self, name: str, value: Optional[Sequence] = None):
        super().__init__(name, value)

    def __len__(self) -> int:
        return 0 if self._value is None else len(self._value)

    def __getitem__(self, index):
        return self._value[index]

    def __setitem__(self, index, value) -> None:
        self._value[index] = value
        self._bump()

    def fill_slice(self, start: int, stop: int, values) -> None:
        """Bulk-update ``payload[start:stop]`` as one versioned write."""
        self._value[start:stop] = values
        self._bump()


# --------------------------------------------------------------------------
# Cross-process payload exchange (the process backend's data protocol).
#
# A payload crosses a process boundary as a PayloadHandle: a small
# picklable object that either embeds the value in the pickle stream or,
# for large numpy arrays, references a shared-memory buffer holding the
# raw bytes.  Ownership of a shared-memory segment transfers with the
# handle: the importing side unlinks it after copying out, so neither
# side has to coordinate lifetimes.


def _numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return None
    return numpy


def _is_aliasable(value: Any) -> bool:
    """Whether closures could hold a live reference to ``value``'s storage
    (mutable containers); scalars/None rebind without a hazard."""
    np = _numpy()
    if np is not None and isinstance(value, np.ndarray):
        return True
    return isinstance(value, (list, bytearray))


def _shape_of(value: Any) -> Any:
    shape = getattr(value, "shape", None)
    if shape is not None:
        return tuple(shape)
    try:
        return (len(value),)
    except TypeError:
        return None


def _copy_in_place(current: Any, value: Any) -> bool:
    """Copy ``value`` into the object ``current`` if types allow."""
    np = _numpy()
    if np is not None and isinstance(current, np.ndarray) \
            and isinstance(value, np.ndarray):
        if current.shape == value.shape and current.dtype == value.dtype:
            np.copyto(current, value)
            return True
        return False
    if isinstance(current, (list, bytearray)) and type(current) is type(value):
        current[:] = value
        return True
    return False


class PayloadHandle:
    """Base class: a picklable carrier for one payload value."""

    def load(self) -> Any:
        """Materialize the payload (releasing any transport resources)."""
        raise NotImplementedError

    def discard(self) -> None:
        """Release transport resources without materializing."""


class InlinePayload(PayloadHandle):
    """The common case: the value rides in the pickle stream itself."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def load(self) -> Any:
        return self.value


class SharedArrayPayload(PayloadHandle):
    """A numpy array parked in a shared-memory segment.

    The exporting process creates the segment and immediately disowns it
    (ownership travels with the handle); :meth:`load` copies the bytes
    out and unlinks the segment.
    """

    __slots__ = ("shm_name", "shape", "dtype_str", "_spent")

    def __init__(self, shm_name: str, shape, dtype_str: str):
        self.shm_name = shm_name
        self.shape = tuple(shape)
        self.dtype_str = dtype_str
        self._spent = False

    def load(self) -> Any:
        from multiprocessing import shared_memory

        np = _numpy()
        segment = shared_memory.SharedMemory(name=self.shm_name)
        try:
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype_str),
                              buffer=segment.buf)
            value = view.copy()
        finally:
            segment.close()
            self._unlink(segment)
        return value

    def discard(self) -> None:
        from multiprocessing import shared_memory

        if self._spent:
            return
        try:
            segment = shared_memory.SharedMemory(name=self.shm_name)
        except FileNotFoundError:
            self._spent = True
            return
        segment.close()
        self._unlink(segment)

    def _unlink(self, segment) -> None:
        if self._spent:
            return
        self._spent = True
        try:
            segment.unlink()
        except FileNotFoundError:  # already reclaimed
            pass

    def __getstate__(self):
        return (self.shm_name, self.shape, self.dtype_str)

    def __setstate__(self, state):
        self.shm_name, self.shape, self.dtype_str = state
        self._spent = False


def export_payload(value: Any,
                   shm_min_bytes: int = PAYLOAD_SHM_MIN_BYTES) -> PayloadHandle:
    """Wrap ``value`` for transport to another process.

    Large numpy arrays are copied into a fresh shared-memory segment and
    shipped by name; everything else is carried inline (pickled with the
    handle).  The caller-side segment is disowned immediately so the
    resource tracker of the exporting process does not double-free it
    when the importing process unlinks.
    """
    np = _numpy()
    if np is not None and isinstance(value, np.ndarray) \
            and value.nbytes >= shm_min_bytes and value.dtype != object:
        from multiprocessing import shared_memory

        contiguous = np.ascontiguousarray(value)
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(1, contiguous.nbytes))
        try:
            view = np.ndarray(contiguous.shape, dtype=contiguous.dtype,
                              buffer=segment.buf)
            np.copyto(view, contiguous)
            _disown_shared_memory(segment)
            return SharedArrayPayload(segment.name, contiguous.shape,
                                      contiguous.dtype.str)
        finally:
            segment.close()
    return InlinePayload(value)


def import_payload(handle: PayloadHandle) -> Any:
    """Materialize a payload exported by another process."""
    return handle.load()


# --------------------------------------------------------------------------
# Payload arena: versioned shared-memory slots for recurring dispatch
# payloads.
#
# export_payload() creates one shared-memory segment per large array and
# transfers ownership with the handle — correct, but a fresh segment
# (shm_open + mmap + unlink) per dispatch is the dominant IPC cost when
# the same cells cross the boundary every round.  A PayloadArena instead
# parks each recurring cell in one *versioned slot* of a long-lived,
# parent-owned segment: re-exports overwrite the slot in place and the
# importer copies out without unlinking.
#
# Concurrency contract (seqlock): each slot carries a 16-byte header
# (uint64 generation, uint64 nbytes).  The writer sets the generation odd
# before copying bytes in and even after; a reader retries while it
# observes an odd or changing generation.  If retries are exhausted under
# sustained writes the reader *accepts the possibly-torn copy*: a Fluid
# consumer is licensed to observe any partial prefix of its producer's
# progress (PAPER.md §3), and a torn arena read only ever mixes two
# adjacent versions of the same approximable cell.  Precise/final reads
# never race — the parent only marks a cell final after the producing
# run's last flush has been applied parent-side.

#: Slot header size and slot alignment, bytes.
_ARENA_ALIGN = 16

#: Minimum size of one arena segment (slots for several cells share it).
_ARENA_SEGMENT_MIN = 1 << 22

#: Importer-side cache of attached arena segments, by shm name.  An
#: attachment is reused for every read from that segment; detach with
#: :func:`arena_detach_all` (the pooled workers' reset path).
_ARENA_SEGMENTS: dict = {}


def _arena_attach(name: str):
    segment = _ARENA_SEGMENTS.get(name)
    if segment is None:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=name)
        # CPython's resource tracker registers shared memory on *attach*
        # as well as create (no opt-out before 3.13's track= parameter);
        # left registered, a worker exiting would unlink the parent's
        # live arena out from under every other process.
        _disown_shared_memory(segment)
        _ARENA_SEGMENTS[name] = segment
    return segment


def arena_detach_all() -> None:
    """Close this process's cached arena attachments (never unlinks)."""
    for segment in _ARENA_SEGMENTS.values():
        try:
            segment.close()
        except Exception:  # pragma: no cover - platform-specific teardown
            pass
    _ARENA_SEGMENTS.clear()


class _ArenaSlot:
    """Parent-side bookkeeping for one cell's slot in the arena."""

    __slots__ = ("segment", "offset", "capacity", "generation")

    def __init__(self, segment, offset: int, capacity: int):
        self.segment = segment
        self.offset = offset
        self.capacity = capacity
        self.generation = 0


class PayloadArena:
    """Versioned shared-memory slots for a run's recurring payloads.

    Owned by the dispatching (parent) process; :meth:`close` unlinks
    every segment, so the arena must outlive all handles it exported.
    Only the parent ever writes; importers copy out under the seqlock
    protocol described above.
    """

    def __init__(self, min_segment_bytes: int = _ARENA_SEGMENT_MIN):
        self._min_segment = min_segment_bytes
        self._segments: list = []
        self._cursor = 0
        self._slots: dict = {}
        self._closed = False

    @staticmethod
    def eligible(value: Any) -> bool:
        """Whether ``value`` is worth a slot (same bar as export_payload's
        shared-memory path: a large non-object numpy array)."""
        np = _numpy()
        return (np is not None and isinstance(value, np.ndarray)
                and value.dtype != object
                and value.nbytes >= PAYLOAD_SHM_MIN_BYTES)

    def export(self, key: Any, value: Any) -> "Optional[ArenaSlotPayload]":
        """Write ``value`` into ``key``'s slot and return a handle.

        Returns None when the value does not qualify (caller falls back
        to :func:`export_payload`).
        """
        if self._closed or not self.eligible(value):
            return None
        np = _numpy()
        contiguous = np.ascontiguousarray(value)
        slot = self._slots.get(key)
        if slot is None or slot.capacity < contiguous.nbytes:
            # A regrown key gets a fresh slot; the old one is left
            # untouched so in-flight handles keep reading stable bytes.
            slot = self._allocate(key, contiguous.nbytes)
        header = np.ndarray((2,), dtype=np.uint64,
                            buffer=slot.segment.buf, offset=slot.offset)
        generation = slot.generation + 1
        header[0] = 2 * generation - 1  # odd: write in progress
        destination = np.ndarray(contiguous.shape, dtype=contiguous.dtype,
                                 buffer=slot.segment.buf,
                                 offset=slot.offset + _ARENA_ALIGN)
        np.copyto(destination, contiguous)
        header[1] = contiguous.nbytes
        header[0] = 2 * generation  # even: settled
        slot.generation = generation
        return ArenaSlotPayload(slot.segment.name, slot.offset,
                                contiguous.shape, contiguous.dtype.str,
                                generation)

    def _allocate(self, key: Any, nbytes: int) -> _ArenaSlot:
        capacity = _ARENA_ALIGN
        while capacity < nbytes:
            capacity <<= 1
        total = _ARENA_ALIGN + capacity
        segment = self._segments[-1] if self._segments else None
        if segment is None or self._cursor + total > segment.size:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(
                create=True, size=max(self._min_segment, total))
            self._segments.append(segment)
            self._cursor = 0
        slot = _ArenaSlot(segment, self._cursor, capacity)
        self._cursor += total
        self._slots[key] = slot
        return slot

    def close(self) -> None:
        """Unlink every segment; outstanding handles become unreadable."""
        if self._closed:
            return
        self._closed = True
        self._slots = {}
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    @property
    def segment_count(self) -> int:
        return len(self._segments)


class ArenaSlotPayload(PayloadHandle):
    """A numpy array parked in a :class:`PayloadArena` slot.

    Unlike :class:`SharedArrayPayload`, ownership does *not* travel with
    the handle: :meth:`load` copies the bytes out of the (parent-owned,
    reusable) slot without unlinking, and :meth:`discard` is a no-op.
    """

    __slots__ = ("shm_name", "offset", "shape", "dtype_str", "generation")

    #: Seqlock read attempts before accepting a possibly-torn copy.
    _READ_RETRIES = 4

    def __init__(self, shm_name: str, offset: int, shape, dtype_str: str,
                 generation: int):
        self.shm_name = shm_name
        self.offset = offset
        self.shape = tuple(shape)
        self.dtype_str = dtype_str
        self.generation = generation

    def load(self) -> Any:
        np = _numpy()
        segment = _arena_attach(self.shm_name)
        header = np.ndarray((2,), dtype=np.uint64, buffer=segment.buf,
                            offset=self.offset)
        view = np.ndarray(self.shape, dtype=np.dtype(self.dtype_str),
                          buffer=segment.buf,
                          offset=self.offset + _ARENA_ALIGN)
        value = None
        for _attempt in range(self._READ_RETRIES):
            before = int(header[0])
            value = view.copy()
            if int(header[0]) == before and before % 2 == 0:
                return value
        # Sustained parent writes exhausted the retries: accept the
        # possibly-torn (or fresher-than-dispatched) copy — exactly the
        # relaxation Fluid licenses for non-final cells.
        return value

    def discard(self) -> None:
        """Nothing to release: the parent owns and reuses the slot."""

    def __getstate__(self):
        return (self.shm_name, self.offset, self.shape, self.dtype_str,
                self.generation)

    def __setstate__(self, state):
        (self.shm_name, self.offset, shape, self.dtype_str,
         self.generation) = state
        self.shape = tuple(shape)


def payload_nbytes(handle: PayloadHandle) -> int:
    """Approximate transport size of a payload handle, in bytes.

    Used by process-backend telemetry to account shared-payload traffic
    without materializing the payload (materializing would unlink a
    shared-memory segment).
    """
    import sys

    if isinstance(handle, (SharedArrayPayload, ArenaSlotPayload)):
        cells = 1
        for extent in handle.shape:
            cells *= extent
        np = _numpy()
        if np is not None:
            return cells * np.dtype(handle.dtype_str).itemsize
        return cells
    if isinstance(handle, InlinePayload):
        value = handle.value
        nbytes = getattr(value, "nbytes", None)
        if isinstance(nbytes, int):
            return nbytes
        if isinstance(value, (bytes, bytearray, memoryview)):
            return len(value)
        return sys.getsizeof(value)
    return 0


def _disown_shared_memory(segment) -> None:
    """Stop this process's resource tracker from reclaiming ``segment``.

    Ownership transfers to the importing process (which unlinks after
    copying out); without this, the exporting process's tracker would
    unlink the segment again at interpreter exit and log warnings.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary by version
        pass
