"""Region-level scheduling helpers (Section 6.2).

Both executors admit regions first-come-first-serve; these helpers build
the common submission topologies so application code stays declarative:

* :func:`submit_chain` — each region consumes the previous one's output
  (K-means epochs, Graph-Coloring rounds);
* :func:`submit_all` — independent regions that may run concurrently
  (inter-region concurrency, Figure 1(b));
* :func:`submit_stages` — a list of *stages*, each a list of concurrent
  regions, with a barrier between stages.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .region import FluidRegion


def submit_chain(executor, regions: Sequence[FluidRegion]) -> List[FluidRegion]:
    """Submit regions so each starts only after the previous completed."""
    submitted: List[FluidRegion] = []
    previous = None
    for region in regions:
        executor.submit(region, after=(previous,) if previous else ())
        submitted.append(region)
        previous = region
    return submitted


def submit_all(executor, regions: Iterable[FluidRegion]) -> List[FluidRegion]:
    """Submit independent regions for concurrent (FCFS) execution."""
    submitted = []
    for region in regions:
        executor.submit(region)
        submitted.append(region)
    return submitted


def submit_stages(executor,
                  stages: Sequence[Sequence[FluidRegion]]) -> List[FluidRegion]:
    """Submit stage after stage: every region of stage ``i+1`` waits for
    every region of stage ``i`` (an inter-stage barrier)."""
    submitted: List[FluidRegion] = []
    previous_stage: Sequence[FluidRegion] = ()
    for stage in stages:
        for region in stage:
            executor.submit(region, after=tuple(previous_stage))
            submitted.append(region)
        previous_stage = tuple(stage)
    return submitted
