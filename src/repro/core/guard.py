"""Guard coordination: the Figure-5 state machine, backend-agnostic.

Each Fluid task is driven by a *guard*.  The paper realizes guards as one
thread per task; this module factors the guard's decision logic out of
any particular execution backend so that the discrete-event simulator and
the real-thread backend share exactly the same semantics.

The :class:`Coordinator` reacts to four stimuli:

* a task body finished a run (``body_finished``) — evaluate the CE
  conditions;
* a task completed — cascade descendant-completion upward and trigger
  early termination of now-pointless re-executions;
* a producer finished a run — deliver *input update* signals to children
  in W or D (transitions (2) and (4) of Figure 5);
* a consumer in W cannot make progress — send *request* signals up the
  chain, stalling producers into D (transition (3)).

The backend supplies a :class:`GuardHost`: a clock, a way to put a task
body on an execution resource, and a cancellation hook.  All Coordinator
methods must be called serialized (the simulator is single-threaded; the
thread backend holds a region lock).
"""

from __future__ import annotations

from typing import Callable, Optional

from .graph import TaskGraph
from .states import TaskState
from .task import FluidTask


class GuardHost:
    """Execution services a backend provides to the coordinator."""

    def now(self) -> float:
        raise NotImplementedError

    def schedule_run(self, task: FluidTask) -> None:
        """Arrange for the task body to (re)start as soon as resources
        allow.  The backend transitions the task into RUNNING when the
        body actually starts."""
        raise NotImplementedError

    def request_cancel(self, task: FluidTask) -> None:
        """Ask a RUNNING task to stop at its next chunk boundary."""
        task.cancel_requested = True

    def task_completed(self, task: FluidTask) -> None:
        """Notification hook (region completion checks, tracing)."""

    def task_failed(self, task: FluidTask, error: Exception) -> None:
        """A task body failed irrecoverably.

        Remote backends route worker-side body exceptions through
        :meth:`Coordinator.body_failed`, which lands here; the default
        re-raises immediately, while event-loop backends typically
        record the error and surface it from ``run()``.
        """
        raise error

    def cell_updated(self, data) -> None:
        """A watched data cell gained information (version bump or
        finality).  Event-driven backends poke their sleeping guards
        here so timed waits are pure fallbacks, not the wake mechanism;
        the default is a no-op for backends that discover progress some
        other way (the simulator's virtual clock, the process backend's
        message stream).  May be called from any thread that mutates
        Fluid data, i.e. from inside running task bodies."""


class ModulationPolicy:
    """Runtime valve-threshold modulation (Sections 4.4 / 6.1).

    On every quality failure the start valves of the failing task's
    region are tightened ``fraction`` of the way toward full
    serialization, so repeated failures converge to precise execution
    even before the re-execution chain does.

    The policy also accumulates *pressure* across failures.  Because
    regions are finalized lazily (an epoch region builds only when the
    scheduler admits it, after its predecessors ran), applications that
    instantiate repeated regions can consult :meth:`adjust` at build
    time to start later epochs with a threshold already raised by the
    failures earlier epochs observed — the cross-invocation adaptation
    the paper sketches in Section 4.4.
    """

    def __init__(self, fraction: float = 0.0):
        self.fraction = fraction
        #: accumulated failure pressure in [0, 1); 0 = no failures seen.
        self.pressure = 0.0
        self.failures = 0

    def on_quality_failure(self, task: FluidTask) -> None:
        self.failures += 1
        if self.fraction <= 0.0:
            return
        self.pressure += (1.0 - self.pressure) * self.fraction
        for valve in task.spec.start_valves:
            valve.tighten(self.fraction)
        for parent in task.parents:
            for valve in parent.spec.start_valves:
                valve.tighten(self.fraction)

    def adjust(self, threshold: float) -> float:
        """A build-time threshold raised toward 1.0 by observed failures."""
        return threshold + (1.0 - threshold) * self.pressure


class Coordinator:
    """Shared guard logic for all tasks of one region."""

    def __init__(self, host: GuardHost, graph: TaskGraph,
                 modulation: Optional[ModulationPolicy] = None,
                 trace: Optional[Callable[[str, FluidTask, str], None]] = None,
                 cancel_first_runs: bool = False,
                 policy: Optional[object] = None,
                 telemetry: Optional[object] = None):
        self.host = host
        self.graph = graph
        self.modulation = modulation or ModulationPolicy(0.0)
        self._trace = trace
        #: A repro.telemetry.TelemetryBus; guard decisions publish into
        #: it as kind="guard" events when set.
        self.telemetry = telemetry
        #: SchedLab schedule policy: when set, the fan-out order of
        #: update signals, child requests and completion cascades is
        #: chosen by the policy instead of graph declaration order.
        #: None (the default) preserves the historical deterministic
        #: order exactly.
        self.policy = policy
        #: Early termination always applies to re-executions (Section
        #: 6.1).  Applying it to *first* runs — killing a producer whose
        #: consumers already met quality, as the paper does for NN's
        #: first layer and for Graph Coloring's selection tail — changes
        #: what work gets skipped, so apps opt in explicitly.
        self.cancel_first_runs = cancel_first_runs
        self._wakeup_cells: "set[int]" = set()

    def enable_update_wakeups(self) -> None:
        """Route data-cell update/final notifications to the host.

        Registers :meth:`GuardHost.cell_updated` as an ``on_update`` and
        ``on_final`` watcher on every data cell the region's tasks read
        or write, so an event-driven backend is poked the moment a
        watched cell bumps instead of discovering it on the next poll
        tick.  Idempotent and safe to call again after dynamic tasks
        join the graph (only newly-seen cells are wired).
        """
        for task in self.graph:
            for data in tuple(task.spec.inputs) + tuple(task.spec.outputs):
                if id(data) in self._wakeup_cells:
                    continue
                self._wakeup_cells.add(id(data))
                data.on_update(self.host.cell_updated)
                data.on_final(self.host.cell_updated)

    # ------------------------------------------------------------------ API

    def body_finished(self, task: FluidTask) -> None:
        """The body ran to completion; task is in END_CHECK.

        Implements the three CE -> C conditions of Section 6.1 and the
        fall-through to W.
        """
        if not task.started_precise and \
                self._inputs_effectively_precise(task):
            # Retroactive precision: every input is now final and precise
            # *and never changed during the run* — the task consumed
            # exactly the values a conservative schedule would have fed
            # it (the paper's Section-2 case 1: the input had already
            # attained its final value).  Without this, a consumer whose
            # valve fires on the producer's very last update would record
            # an imprecise start and re-execute for nothing.
            task.started_precise = True
        task.finish_run()  # outputs become final (and precise if inputs were)
        completed, reason = self._end_decision(task)
        if completed:
            self._complete(task, reason)
        else:
            task.transition(TaskState.WAITING, self.host.now())
            if task.has_end_valves:
                task.stats.quality_failures += 1
                self.modulation.on_quality_failure(task)
            self._emit("wait", task, reason)
        # Children waiting for more accurate input can now use this run's
        # final output, whether or not this task itself completed.
        self._deliver_update_signals(task)
        if not completed:
            self._poke_waiting(task)

    def body_cancelled(self, task: FluidTask) -> None:
        """Early termination: a re-execution was cancelled because every
        descendant completed (Section 6.1)."""
        task.stats.cancelled_runs += 1
        self._complete(task, "early-termination")

    def body_failed(self, task: FluidTask, error: Exception) -> None:
        """A body raised on an execution resource the guard does not
        share an address space with (process/remote backends): record
        the failed run and hand the error to the host for surfacing."""
        task.stats.failed_runs += 1
        self._emit("failed", task, repr(error))
        self.host.task_failed(task, error)

    def skip_rerun(self, task: FluidTask) -> None:
        """A scheduled re-execution became pointless before it started:
        every descendant completed while it sat in the ready queue."""
        task.rerun_scheduled = False
        self._complete(task, "rerun-skipped")

    # --------------------------------------------------------- CE decision

    def _end_decision(self, task: FluidTask) -> "tuple[bool, str]":
        # (ii) all inputs were precise before the run started: the output
        # is identical to a conservative execution; quality is overridden.
        if task.started_precise:
            return True, "precise-inputs"
        # (i) a leaf whose end valves (quality function) are all satisfied.
        if task.is_leaf:
            if not task.has_end_valves:
                return True, "leaf-no-quality"
            if task.end_valves_satisfied():
                return True, "quality-passed"
            return False, "quality-failed"
        # (iii) every descendant already completed; output will not be
        # consumed again.
        if task.descendants_complete():
            return True, "descendants-complete"
        return False, "descendants-pending"

    # ------------------------------------------------------------ completion

    def _complete(self, task: FluidTask, reason: str) -> None:
        task.transition(TaskState.COMPLETE, self.host.now())
        self._emit("complete", task, reason)
        self.host.task_completed(task)
        # Cascade: ancestors whose descendants are now all complete can
        # retire; running re-executions become pointless and are cancelled.
        for ancestor in self._ancestors(task):
            if ancestor.state in (TaskState.WAITING, TaskState.DEP_STALLED,
                                  TaskState.INIT, TaskState.START_CHECK):
                if not ancestor.rerun_scheduled and ancestor.descendants_complete():
                    self._complete(ancestor, "descendants-complete")
            elif ancestor.state is TaskState.RUNNING:
                if (ancestor.run_index > 0 or self.cancel_first_runs) and \
                        ancestor.descendants_complete():
                    self.host.request_cancel(ancestor)

    def _ancestors(self, task: FluidTask):
        seen = set()
        stack = self._ordered("cascade", task.parents)
        while stack:
            node = stack.pop()
            if node.name in seen:
                continue
            seen.add(node.name)
            yield node
            stack.extend(self._ordered("cascade", node.parents))

    # ---------------------------------------------------------------- signals

    def _ordered(self, point: str, tasks) -> "list[FluidTask]":
        """Fan-out order for signals: policy-chosen when exploring."""
        tasks = list(tasks)
        if self.policy is None or len(tasks) <= 1:
            return tasks
        permutation = self.policy.order(point, [t.name for t in tasks])
        return [tasks[i] for i in permutation]

    def _deliver_update_signals(self, producer: FluidTask) -> None:
        """The producer finished a run: more accurate data exists."""
        for child in self._ordered("signal", producer.children):
            if child.state is TaskState.WAITING or \
                    child.state is TaskState.DEP_STALLED:
                self._rerun(child, "input-update")
            elif child.state is TaskState.RUNNING:
                child.pending_update = True

    def _poke_waiting(self, task: FluidTask) -> None:
        """Entering W: decide between immediate re-run, requesting more
        precise input, or sitting tight.

        Re-runs are gated on *completed* producer runs (final data that
        advanced since our run started), not on raw version bumps: a fast
        consumer failing quality against a slow, still-running producer
        waits in W for the producer's completion signal — the behaviour
        behind the single long Wait visit of Sobel in the paper's
        Table 3 — rather than spinning one re-execution per producer
        chunk.
        """
        if task.pending_update or self._final_inputs_advanced(task):
            self._rerun(task, "inputs-advanced")
            return
        if task.is_leaf and task.has_end_valves:
            # Quality failed and no better input exists yet.  If some
            # producer of an imprecise input is idle in W, request a more
            # accurate version (transition (3)).  Producers still RUNNING
            # are left alone: their completion will wake us.
            for parent in self._ordered("request", task.parents):
                if not self._edge_precise(parent, task):
                    self._request(parent)

    @staticmethod
    def _inputs_effectively_precise(task: FluidTask) -> bool:
        """All inputs are final+precise and unchanged since the run began."""
        return all(
            data.final and data.precise and
            task.input_snapshots[data.name].version == data.version
            for data in task.spec.inputs)

    @staticmethod
    def _final_inputs_advanced(task: FluidTask) -> bool:
        """Some input finished a fresh producer run since our run began."""
        return any(
            data.final and task.input_snapshots[data.name].advanced_in(data)
            for data in task.spec.inputs)

    def _edge_precise(self, producer: FluidTask, consumer: FluidTask) -> bool:
        return all(data.precise for data in producer.spec.outputs
                   if data in consumer.spec.inputs)

    def _request(self, producer: FluidTask) -> None:
        """A child asked ``producer`` for more accurate output."""
        if producer.state is not TaskState.WAITING or producer.rerun_scheduled:
            # RUNNING / queued: better data is already on the way.
            # DEP_STALLED: already waiting on its own parents.
            # START_CHECK/INIT: the first run has not even happened.
            # COMPLETE: its output is final; the child must consume it.
            return
        if producer.pending_update or self._final_inputs_advanced(producer):
            self._rerun(producer, "child-request")
            return
        producer.transition(TaskState.DEP_STALLED, self.host.now())
        self._emit("dep-stalled", producer, "child-request")
        for grandparent in self._ordered("request", producer.parents):
            if not self._edge_precise(grandparent, producer):
                self._request(grandparent)

    def _rerun(self, task: FluidTask, reason: str) -> None:
        if task.rerun_scheduled:
            return
        task.rerun_scheduled = True
        task.pending_update = False
        self._emit("rerun", task, reason)
        self.host.schedule_run(task)

    # ------------------------------------------------------------------ misc

    def _emit(self, event: str, task: FluidTask, detail: str) -> None:
        if self._trace is not None:
            self._trace(event, task, detail)
        if self.telemetry is not None:
            self.telemetry.emit(
                "guard", getattr(task.region, "name", ""), task.name, event,
                ts=self.host.now(), data={"detail": detail})
