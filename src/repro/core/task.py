"""Fluid tasks: dynamic instances of Fluid methods (``#pragma task``).

A :class:`TaskSpec` is the static half — the guard tuple
``<<<name, SV, EV, Inputs, Outputs>>>`` plus the body function.  A
:class:`FluidTask` is the dynamic half: current state-machine state,
per-run bookkeeping (input snapshots, pending signals) and statistics.

Task bodies are *generators*: they perform a chunk of work, then
``yield`` the chunk's virtual cost (a non-negative float).  The executor
interleaves chunks of concurrently-running tasks; in the simulator
backend the yielded costs advance virtual time, in the thread backend
they are cooperative cancellation points.  A body receives a
:class:`TaskContext` as its only framework argument::

    def gaussian(ctx):
        image = d_in.read()
        for row in range(height):
            out[row] = blur(image, row)
            ct.add(width)
            yield width * KERNEL_COST
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Generator, Sequence

from .data import DataSnapshot, FluidData
from .errors import GraphError
from .states import (TaskState, check_transition, notify_transition,
                     TRANSITION_OBSERVERS)
from .stats import TaskStats
from .valves import Valve

TaskBody = Callable[..., Generator[float, None, None]]


class TaskContext:
    """Handle passed to every task body.

    Exposes the run index (0 for the first execution, >0 for
    re-executions triggered by quality failures) and a cooperative
    cancellation flag used by the early-termination mechanism.
    """

    def __init__(self, task: "FluidTask"):
        self.task = task

    @property
    def run_index(self) -> int:
        return self.task.run_index

    @property
    def cancelled(self) -> bool:
        return self.task.cancel_requested

    @property
    def name(self) -> str:
        return self.task.name

    def spawn(self, name: str, body: "TaskBody", start_valves=(),
              end_valves=(), inputs=(), outputs=()):
        """Dynamically add a successor task to the running region.

        This is the Section-8 extension ("accommodating dynamic
        task-graphs"): a running task may create new tasks whose outputs
        are fresh data cells — e.g. one consumer per item an ongoing
        scan discovers.  Requires an executor with dynamic support
        (both bundled executors provide it)."""
        return self.task.region.spawn_task(
            self.task, name, body, start_valves=start_valves,
            end_valves=end_valves, inputs=inputs, outputs=outputs)


class TaskSpec:
    """Static description of one Fluid task.

    ``priority``, ``deadline`` and ``cost_estimate`` are optional
    scheduling hints consumed by the non-default disciplines in
    :mod:`repro.sched` (priority / EDF / shortest-expected-work); the
    paper-faithful FCFS default ignores them, so they change nothing
    unless a scheduler that reads them is selected.
    """

    def __init__(self, name: str, body: TaskBody,
                 start_valves: Sequence[Valve] = (),
                 end_valves: Sequence[Valve] = (),
                 inputs: Sequence[FluidData] = (),
                 outputs: Sequence[FluidData] = (),
                 priority: float = 0.0,
                 deadline: "float | None" = None,
                 cost_estimate: "float | None" = None):
        if not name:
            raise GraphError("tasks must be named")
        self.name = name
        self.body = body
        self.start_valves = tuple(start_valves)
        self.end_valves = tuple(end_valves)
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.priority = priority
        self.deadline = deadline
        self.cost_estimate = cost_estimate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TaskSpec({self.name}, in={[d.name for d in self.inputs]}, "
                f"out={[d.name for d in self.outputs]})")


class FluidTask:
    """A schedulable dynamic instance of a Fluid method."""

    def __init__(self, spec: TaskSpec, region: "object" = None):
        self.spec = spec
        self.region = region
        self.state = TaskState.INIT
        self.stats = TaskStats(spec.name)
        self.run_index = 0
        self.cancel_requested = False
        # Snapshots of every input at the start of the current/last run.
        self.input_snapshots: Dict[str, DataSnapshot] = {}
        self.started_precise = False
        # Signals that arrived while the task could not act on them.
        self.pending_update = False
        # A re-run has been handed to the backend but has not started yet.
        self.rerun_scheduled = False
        # Filled in by the graph: parent and child FluidTasks.
        self.parents: Sequence["FluidTask"] = ()
        self.children: Sequence["FluidTask"] = ()
        self.descendants: Sequence["FluidTask"] = ()

    # -- convenience -----------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return not self.parents

    @property
    def has_end_valves(self) -> bool:
        return bool(self.spec.end_valves)

    # -- state machine -----------------------------------------------------

    def transition(self, new_state: TaskState, now: float) -> None:
        check_transition(self.state, new_state)
        old_state = self.state
        self.state = new_state
        self.stats.enter(new_state, now)
        telemetry = getattr(self.region, "telemetry", None)
        if telemetry is not None:
            telemetry.emit(
                "transition", getattr(self.region, "name", ""), self.name,
                new_state.name, ts=now,
                data={"src": old_state.name, "run": self.run_index})
        if TRANSITION_OBSERVERS:
            notify_transition(self, old_state, new_state)

    # -- run bookkeeping ---------------------------------------------------

    def begin_run(self) -> TaskContext:
        """Snapshot inputs and build the generator context for one run."""
        self.input_snapshots = {
            data.name: data.snapshot() for data in self.spec.inputs}
        self.started_precise = all(
            data.precise for data in self.spec.inputs)
        self.cancel_requested = False
        self.pending_update = False
        self.rerun_scheduled = False
        return TaskContext(self)

    def make_generator(self, ctx: TaskContext) -> Generator[float, None, None]:
        generator = self.spec.body(ctx)
        if not hasattr(generator, "__next__"):
            raise GraphError(
                f"task {self.name!r}: body must be a generator function "
                f"(got {type(generator).__name__})")
        fault_plan = getattr(self.region, "fault_plan", None)
        if fault_plan is not None:
            generator = fault_plan.wrap_body(self, generator)
        return generator

    def finish_run(self) -> None:
        """Mark outputs final, record precision, advance the run index."""
        for data in self.spec.outputs:
            data.mark_final(precise=self.started_precise)
        self.stats.runs += 1
        self.run_index += 1

    def inputs_advanced(self) -> bool:
        """Did any input gain information since the last run started?"""
        return any(self.input_snapshots[data.name].advanced_in(data)
                   for data in self.spec.inputs)

    def end_valves_satisfied(self) -> bool:
        return self._check_valves("end", self.spec.end_valves)

    def start_valves_satisfied(self) -> bool:
        return self._check_valves("start", self.spec.start_valves)

    def _check_valves(self, which: str, valves: Sequence[Valve]) -> bool:
        """Evaluate one valve set, publishing verdict + latency telemetry.

        Empty valve sets pass vacuously and are not counted as
        evaluations; SchedLab fault overrides are counted (with zero
        latency and a ``forced`` flag) so metric parity holds under
        fault injection.
        """
        telemetry = getattr(self.region, "telemetry", None)
        forced = self._valve_fault(which)
        if forced is not None:
            if telemetry is not None and valves:
                telemetry.emit(
                    "valve", getattr(self.region, "name", ""), self.name,
                    which, data={"result": forced, "latency": 0.0,
                                 "valves": len(valves), "forced": True})
            return forced
        if telemetry is None or not valves:
            return all(valve.check() for valve in valves)
        started = time.perf_counter()
        evaluated = skipped = 0
        result = True
        for valve in valves:
            before = valve.checks
            verdict = valve.check()
            if valve.checks == before:
                skipped += 1
            else:
                evaluated += 1
            if not verdict:
                result = False
                break
        if evaluated == 0 and skipped:
            # Every valve answered from its memo: nothing was recomputed,
            # so no valve-evaluation event is published (the paper's
            # "check" is the recompute, not the call).  The skips are
            # still visible through MetricsRegistry via the per-region
            # memo summary the executors publish at region completion.
            return result
        telemetry.emit(
            "valve", getattr(self.region, "name", ""), self.name, which,
            data={"result": result,
                  "latency": time.perf_counter() - started,
                  "valves": len(valves),
                  "evaluated": evaluated, "skipped": skipped})
        return result

    def _valve_fault(self, which: str) -> "bool | None":
        """SchedLab valve flakiness: a fault plan may transiently force
        this task's valve verdict; None means no fault applies."""
        fault_plan = getattr(self.region, "fault_plan", None)
        if fault_plan is None:
            return None
        return fault_plan.valve_override(self, which)

    def descendants_complete(self) -> bool:
        return all(task.state is TaskState.COMPLETE
                   for task in self.descendants)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FluidTask({self.name}, {self.state}, run={self.run_index})"
