"""Exception hierarchy for the Fluid framework.

Every error raised by :mod:`repro` derives from :class:`FluidError`, so
callers can catch framework failures with a single ``except`` clause while
still distinguishing configuration mistakes (graph shape, valve wiring)
from runtime faults (scheduling deadlocks, cancelled tasks).
"""

from __future__ import annotations


class FluidError(Exception):
    """Base class for all Fluid framework errors."""


class GraphError(FluidError):
    """The static task graph of a region violates the Fluid region rules.

    Raised for cyclic dataflow, multiple root tasks, end valves attached to
    non-leaf tasks, tasks with no connection to the region, and similar
    shape violations described in Sections 3.3 and 4.1 of the paper.
    """


class ValveError(FluidError):
    """A valve is mis-configured (bad threshold, missing count, ...)."""


class DataError(FluidError):
    """Illegal access to Fluid data (e.g. non-Fluid read of a partial value)."""


class StateError(FluidError):
    """An illegal task state transition was requested."""


class SchedulerError(FluidError):
    """The runtime could not make progress (deadlock, resource misuse)."""


class TuningError(FluidError):
    """A valve autotuner or its controller/SLO spec is mis-configured."""


class TaskCancelled(FluidError):
    """Injected into a task body to realize early termination (Section 6.1)."""


class TaskBodyError(FluidError):
    """A task body raised; carries the task/region context and chains the
    original exception as ``__cause__``."""

    def __init__(self, region_name: str, task_name: str, run_index: int,
                 original: BaseException):
        self.region_name = region_name
        self.task_name = task_name
        self.run_index = run_index
        super().__init__(
            f"task {region_name}/{task_name} (run {run_index}) raised "
            f"{type(original).__name__}: {original}")


class CompileError(FluidError):
    """A FluidPy source file failed to lex, parse, or type-check.

    Carries an optional source location so tooling can report
    ``file:line:col`` diagnostics.
    """

    def __init__(self, message: str, filename: str = "<fluid>",
                 line: int = 0, column: int = 0):
        self.filename = filename
        self.line = line
        self.column = column
        if line:
            message = f"{filename}:{line}:{column}: {message}"
        super().__init__(message)
