"""Static task graphs: topology inference and Fluid region validation.

The graph of a region is *inferred* from the ``Inputs``/``Outputs`` sets
of its task pragmas: if data ``d`` appears in the outputs of ``t1`` and
the inputs of ``t2``, then ``t1 -> t2`` is a dataflow edge (Section 4.1).

Validation enforces the region rules of Sections 3.3 and 4.1:

* exactly one root task and at least one leaf task;
* the dataflow graph is acyclic;
* only leaf tasks may carry end valves;
* every data cell has at most one producing task (true dependencies
  only; anti-dependencies go through ``sync``);
* every task is reachable from the root.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from .data import FluidData
from .errors import GraphError
from .task import FluidTask


class TaskGraph:
    """The static dataflow graph of one Fluid region."""

    def __init__(self, tasks: Sequence[FluidTask]):
        self.tasks: List[FluidTask] = list(tasks)
        self._by_name: Dict[str, FluidTask] = {}
        for task in self.tasks:
            if task.name in self._by_name:
                raise GraphError(f"duplicate task name {task.name!r}")
            self._by_name[task.name] = task
        self._wire()

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, name: str) -> FluidTask:
        return self._by_name[name]

    # -- construction ------------------------------------------------------

    def _wire(self) -> None:
        producers: Dict[int, FluidTask] = {}
        for task in self.tasks:
            for data in task.spec.outputs:
                key = id(data)
                if key in producers and producers[key] is not task:
                    raise GraphError(
                        f"data {data.name!r} has two producers "
                        f"({producers[key].name!r} and {task.name!r}); "
                        "anti-dependencies must be ordered with sync()")
                producers[key] = task
                data.producer = task

        children: Dict[str, List[FluidTask]] = {t.name: [] for t in self.tasks}
        parents: Dict[str, List[FluidTask]] = {t.name: [] for t in self.tasks}
        for task in self.tasks:
            for data in task.spec.inputs:
                producer = producers.get(id(data))
                if producer is None or producer is task:
                    continue  # region input (non-Fluid) or self-loop guard
                if producer not in parents[task.name]:
                    parents[task.name].append(producer)
                    children[producer.name].append(task)

        for task in self.tasks:
            task.parents = tuple(parents[task.name])
            task.children = tuple(children[task.name])
        for task in self.tasks:
            task.descendants = tuple(self._collect_descendants(task))

    def _collect_descendants(self, task: FluidTask) -> Iterable[FluidTask]:
        seen: Set[str] = set()
        stack = list(task.children)
        while stack:
            node = stack.pop()
            if node.name in seen:
                continue
            seen.add(node.name)
            stack.extend(node.children)
        return [self._by_name[name] for name in sorted(seen)]

    # -- dynamic extension (paper Section 8) ---------------------------------

    def add_dynamic_task(self, task: FluidTask,
                         spawner: FluidTask) -> None:
        """Attach a task spawned while the region is executing.

        The static-graph rules are preserved by construction:

        * the new task's outputs must be fresh cells no existing task
          produces *or consumes* — the new node therefore has no
          outgoing edges yet and cannot close a cycle;
        * a parent that owned end valves would silently stop being a
          leaf, so that case is rejected;
        * parents/children/descendants are patched incrementally.
        """
        if task.name in self._by_name:
            raise GraphError(f"duplicate task name {task.name!r}")
        if spawner.name not in self._by_name:
            raise GraphError(
                f"dynamic task {task.name!r}: spawner {spawner.name!r} is "
                "not part of this region")
        produced = {id(d): t for t in self.tasks for d in t.spec.outputs}
        consumed = {id(d) for t in self.tasks for d in t.spec.inputs}
        for data in task.spec.outputs:
            if id(data) in produced:
                raise GraphError(
                    f"dynamic task {task.name!r}: data {data.name!r} "
                    f"already has producer "
                    f"{produced[id(data)].name!r}")
            if id(data) in consumed:
                raise GraphError(
                    f"dynamic task {task.name!r}: output {data.name!r} is "
                    "already consumed by an existing task; dynamic tasks "
                    "may only feed tasks spawned after them")
            data.producer = task

        parents = []
        for data in task.spec.inputs:
            producer = produced.get(id(data))
            if producer is not None and producer is not task and \
                    producer not in parents:
                parents.append(producer)
        for parent in parents:
            if parent.has_end_valves:
                raise GraphError(
                    f"dynamic task {task.name!r} would demote "
                    f"{parent.name!r} from leaf to interior, but "
                    f"{parent.name!r} carries end valves (Section 3.3)")
        task.parents = tuple(parents)
        task.children = ()
        task.descendants = ()
        for parent in parents:
            parent.children = tuple(parent.children) + (task,)
        # Every (transitive) ancestor gains the new task as a descendant.
        seen = set()
        stack = list(parents)
        while stack:
            node = stack.pop()
            if node.name in seen:
                continue
            seen.add(node.name)
            node.descendants = tuple(node.descendants) + (task,)
            stack.extend(node.parents)

        self.tasks.append(task)
        self._by_name[task.name] = task

    # -- queries -----------------------------------------------------------

    @property
    def roots(self) -> List[FluidTask]:
        return [task for task in self.tasks if task.is_root]

    @property
    def leaves(self) -> List[FluidTask]:
        return [task for task in self.tasks if task.is_leaf]

    def topo_order(self) -> List[FluidTask]:
        """Kahn topological sort; raises :class:`GraphError` on cycles."""
        in_degree = {task.name: len(task.parents) for task in self.tasks}
        frontier = [task for task in self.tasks if in_degree[task.name] == 0]
        order: List[FluidTask] = []
        while frontier:
            task = frontier.pop(0)
            order.append(task)
            for child in task.children:
                in_degree[child.name] -= 1
                if in_degree[child.name] == 0:
                    frontier.append(child)
        if len(order) != len(self.tasks):
            cyclic = sorted(name for name, deg in in_degree.items() if deg > 0)
            raise GraphError(f"cyclic dataflow among tasks: {cyclic}")
        return order

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Enforce the Fluid region shape rules; raise GraphError otherwise."""
        if not self.tasks:
            raise GraphError("a Fluid region must contain at least one task")
        self.topo_order()  # raises on cycles
        roots = self.roots
        if len(roots) != 1:
            raise GraphError(
                f"a Fluid region must have exactly one root task, found "
                f"{[t.name for t in roots] or 'none'}; add a header task "
                "on which all entry points depend (Section 2)")
        if not self.leaves:
            raise GraphError("a Fluid region must have at least one leaf task")
        for task in self.tasks:
            if task.has_end_valves and not task.is_leaf:
                raise GraphError(
                    f"task {task.name!r} has end valves but is not a leaf; "
                    "only leaf tasks may carry quality functions (Section 3.3)")
        root = roots[0]
        reachable = {root.name} | {t.name for t in root.descendants}
        unreachable = sorted(t.name for t in self.tasks
                             if t.name not in reachable)
        if unreachable:
            raise GraphError(
                f"tasks unreachable from root {root.name!r}: {unreachable}")

    def lint(self) -> List[str]:
        """Non-fatal diagnostics about suspicious (but legal) regions.

        The big one: a non-root task with an empty start-valve set starts
        the moment its region launches and races its producers even at a
        100% threshold — almost never what the author meant (both
        Bellman-Ford and the header-token pattern hit this during
        development).  Returns human-readable warnings; callers decide
        whether to surface them.
        """
        warnings: List[str] = []
        for task in self.tasks:
            if task.parents and not task.spec.start_valves:
                parents = ", ".join(p.name for p in task.parents)
                warnings.append(
                    f"task {task.name!r} consumes output of {parents} but "
                    "has no start valves: it will start immediately and "
                    "race its producers even at full thresholds (gate it "
                    "with a PercentValve or DataFinalValve)")
            if task.is_leaf and not task.has_end_valves and task.parents:
                warnings.append(
                    f"leaf task {task.name!r} has no end valves: eager "
                    "output is accepted unconditionally (no quality "
                    "function)")
        return warnings

    # -- region I/O --------------------------------------------------------

    def region_inputs(self) -> List[FluidData]:
        """Data cells consumed by tasks but produced by no task."""
        produced = {id(d) for t in self.tasks for d in t.spec.outputs}
        seen: Set[int] = set()
        inputs: List[FluidData] = []
        for task in self.tasks:
            for data in task.spec.inputs:
                if id(data) not in produced and id(data) not in seen:
                    seen.add(id(data))
                    inputs.append(data)
        return inputs

    def region_outputs(self) -> List[FluidData]:
        """Data cells produced by leaf tasks: the region's non-Fluid outputs."""
        outputs: List[FluidData] = []
        seen: Set[int] = set()
        for task in self.leaves:
            for data in task.spec.outputs:
                if id(data) not in seen:
                    seen.add(id(data))
                    outputs.append(data)
        return outputs
