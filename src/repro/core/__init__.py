"""The Fluid programming model: data, counts, valves, tasks, regions.

This subpackage is the paper's primary contribution — everything needed
to express a Fluid region and have it executed by one of the backends in
:mod:`repro.runtime`.
"""

from .count import Count, ImmediateSink, UpdateSink
from .data import DataSnapshot, FluidArray, FluidData, FluidScalar
from .errors import (CompileError, DataError, FluidError, GraphError,
                     SchedulerError, StateError, TaskBodyError,
                     TaskCancelled, ValveError)
from .graph import TaskGraph
from .guard import Coordinator, GuardHost, ModulationPolicy
from .region import FluidRegion
from .scheduler import submit_all, submit_chain, submit_stages
from .states import LEGAL_TRANSITIONS, TaskState, check_transition
from .stats import RegionStats, TaskStats, TABLE3_STATES
from .sync import sync
from .task import FluidTask, TaskContext, TaskSpec
from .valves import (AlwaysValve, ConvergenceValve, CountValve,
                     DataFinalValve, NeverValve, PercentValve,
                     PredicateValve, StabilityValve, StalenessValve,
                     Valve, memoization_enabled, set_memoization)

__all__ = [
    "Count", "ImmediateSink", "UpdateSink",
    "DataSnapshot", "FluidArray", "FluidData", "FluidScalar",
    "CompileError", "DataError", "FluidError", "GraphError",
    "SchedulerError", "StateError", "TaskBodyError",
    "TaskCancelled", "ValveError",
    "TaskGraph", "Coordinator", "GuardHost", "ModulationPolicy",
    "FluidRegion", "submit_all", "submit_chain", "submit_stages",
    "LEGAL_TRANSITIONS", "TaskState", "check_transition",
    "RegionStats", "TaskStats", "TABLE3_STATES", "sync",
    "FluidTask", "TaskContext", "TaskSpec",
    "AlwaysValve", "ConvergenceValve", "CountValve", "DataFinalValve",
    "NeverValve", "PercentValve", "PredicateValve", "StabilityValve",
    "StalenessValve", "Valve", "memoization_enabled", "set_memoization",
]
