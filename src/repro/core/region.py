"""Fluid regions: the unit of approximate concurrency.

A :class:`FluidRegion` corresponds to one Fluid object in the paper: it
encapsulates the Fluid data, counts, valves and tasks of a single
approximable region.  Regions have a non-Fluid input and non-Fluid
outputs; fluidity is confined inside the region (Section 3.2).

Two usage styles are supported:

* imperative — instantiate a region and call :meth:`add_data`,
  :meth:`add_count`, :meth:`add_task` directly (what the FluidPy
  compiler's generated code does);
* declarative — subclass and override :meth:`build`, which is invoked by
  :meth:`finalize` before the region is handed to an executor (what the
  bundled applications do)::

      class EdgeDetection(FluidRegion):
          def build(self):
              d1 = self.input_data("d1", image)
              d2 = self.add_array("d2", buffer)
              ct = self.add_count("ct")
              ...
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .count import Count, UpdateSink
from .data import FluidArray, FluidData, FluidScalar
from .errors import GraphError
from .graph import TaskGraph
from .stats import RegionStats
from .task import FluidTask, TaskBody, TaskSpec
from .valves import Valve

_region_counter = [0]


class FluidRegion:
    """One Fluid object: data + counts + valves + a static task graph."""

    def __init__(self, name: Optional[str] = None):
        if name is None:
            _region_counter[0] += 1
            name = f"{type(self).__name__.lower()}_{_region_counter[0]}"
        self.name = name
        self.datas: Dict[str, FluidData] = {}
        self.counts: Dict[str, Count] = {}
        self.valves: List[Valve] = []
        self.tasks: List[FluidTask] = []
        self.graph: Optional[TaskGraph] = None
        self.stats = RegionStats(name)
        self._finalized = False
        # Set by an executor that supports dynamic task graphs; a
        # TaskContext.spawn() call routes through it (Section 8).
        self.dynamic_host = None
        # Set by SchedLab to inject faults (body exceptions, valve
        # flakiness, delays) into this region's tasks; None in normal
        # operation.  See repro.schedlab.faults.FaultPlan.
        self.fault_plan = None
        # Set by an executor when telemetry is enabled: a
        # repro.telemetry.TelemetryBus that task transitions and valve
        # evaluations publish into; None means no instrumentation.
        self.telemetry = None
        # Pool-dispatch contract: a picklable ``(callable, args, kwargs)``
        # triple whose module-level callable rebuilds a structurally
        # identical region (same build() determinism rule the process
        # backend already requires).  Workers of a
        # :class:`repro.runtime.worker_pool.PersistentProcessPool` fork
        # *before* regions exist, so closures cannot be inherited; the
        # factory is shipped instead.  ``None`` (the default) keeps the
        # region fork-only: pooled executors refuse it and pool-aware
        # callers (FluidService, repro.stream) fall back to per-run forks.
        self.remote_factory = None
        self._bound_sink: Optional[UpdateSink] = None

    # -- declaration API ---------------------------------------------------

    def add_data(self, name: str, value: Any = None) -> FluidData:
        """Declare a scalar Fluid data member (``#pragma data {T d;}``)."""
        return self._register_data(FluidScalar(name, value))

    def add_array(self, name: str, value: Any = None) -> FluidArray:
        """Declare an array Fluid data member (``#pragma data {T *d;}``)."""
        return self._register_data(FluidArray(name, value))

    def input_data(self, name: str, value: Any = None) -> FluidData:
        """Declare the region's non-Fluid input: born final and precise."""
        data = FluidScalar(name, value)
        data.mark_input()
        return self._register_data(data)

    def _register_data(self, data: FluidData) -> FluidData:
        if data.name in self.datas:
            raise GraphError(
                f"region {self.name!r}: duplicate data {data.name!r}")
        data.region = self
        self.datas[data.name] = data
        return data

    def add_count(self, name: str, initial: Any = 0) -> Count:
        """Declare a count member (``#pragma count {T ct;}``)."""
        if name in self.counts:
            raise GraphError(
                f"region {self.name!r}: duplicate count {name!r}")
        count = Count(name, initial)
        if self._bound_sink is not None:
            # Counts declared after launch (dynamic tasks) must publish
            # through the executor like every other count.
            count.bind_sink(self._bound_sink)
        self.counts[name] = count
        return count

    def add_valve(self, valve: Valve) -> Valve:
        """Register a valve (``#pragma valve``) for bookkeeping/reset."""
        self.valves.append(valve)
        return valve

    def add_task(self, name: str, body: TaskBody,
                 start_valves: Sequence[Valve] = (),
                 end_valves: Sequence[Valve] = (),
                 inputs: Sequence[FluidData] = (),
                 outputs: Sequence[FluidData] = (),
                 priority: float = 0.0,
                 deadline: "float | None" = None,
                 cost_estimate: "float | None" = None) -> FluidTask:
        """Schedule a task (``#pragma task <<<name, SV, EV, In, Out>>>``).

        ``priority`` / ``deadline`` / ``cost_estimate`` are optional
        scheduling hints for the non-default :mod:`repro.sched`
        disciplines; the FCFS default ignores them.
        """
        if self._finalized:
            raise GraphError(
                f"region {self.name!r}: cannot add tasks after finalize(); "
                "dynamic task graphs are future work (Section 8)")
        spec = TaskSpec(name, body, start_valves, end_valves, inputs, outputs,
                        priority=priority, deadline=deadline,
                        cost_estimate=cost_estimate)
        task = FluidTask(spec, region=self)
        self.tasks.append(task)
        for valve in tuple(start_valves) + tuple(end_valves):
            if valve not in self.valves:
                self.valves.append(valve)
        return task

    # -- lifecycle -----------------------------------------------------------

    def build(self) -> None:
        """Hook for subclasses: declare data, counts, valves and tasks."""

    def finalize(self) -> TaskGraph:
        """Build (if needed), infer the task graph, and validate the region."""
        if not self._finalized:
            if not self.tasks:
                self.build()
            self.graph = TaskGraph(self.tasks)
            self.graph.validate()
            # Region inputs are non-Fluid (Section 3.2): any data cell
            # consumed but produced by no task is born final and precise.
            for data in self.graph.region_inputs():
                data.mark_input()
            self._finalized = True
        return self.graph

    def bind_sink(self, sink: UpdateSink) -> None:
        """Route all count updates through the executor's sink."""
        self._bound_sink = sink
        for count in self.counts.values():
            count.bind_sink(sink)

    # -- dynamic task graphs (paper Section 8) -----------------------------

    def spawn_task(self, spawner: "FluidTask", name: str, body: TaskBody,
                   start_valves: Sequence[Valve] = (),
                   end_valves: Sequence[Valve] = (),
                   inputs: Sequence[FluidData] = (),
                   outputs: Sequence[FluidData] = ()) -> FluidTask:
        """Add a task to an *executing* region (``ctx.spawn``).

        Only available under an executor that installed itself as the
        region's dynamic host; the spawner must still be running, which
        structurally guarantees the region has not completed.
        """
        from .states import TaskState

        if self.dynamic_host is None:
            raise GraphError(
                f"region {self.name!r}: this executor does not support "
                "dynamic task graphs")
        if spawner.state is not TaskState.RUNNING:
            raise GraphError(
                f"task {spawner.name!r} may only spawn while RUNNING")
        spec = TaskSpec(name, body, start_valves, end_valves, inputs,
                        outputs)
        task = FluidTask(spec, region=self)
        assert self.graph is not None
        self.graph.add_dynamic_task(task, spawner)
        self.tasks.append(task)
        for valve in tuple(start_valves) + tuple(end_valves):
            if valve not in self.valves:
                self.valves.append(valve)
        self.dynamic_host.admit_dynamic_task(self, task)
        return task

    def reset_valves(self) -> None:
        """Undo runtime threshold modulation before a fresh execution."""
        for valve in self.valves:
            valve.relax_to_base()

    # -- results ---------------------------------------------------------------

    @property
    def complete(self) -> bool:
        from .states import TaskState

        return bool(self.tasks) and all(
            task.state is TaskState.COMPLETE for task in self.tasks)

    def output(self, name: str) -> Any:
        """Read a region output by data name; requires the run to be done."""
        return self.datas[name].read_final()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FluidRegion({self.name}, tasks={len(self.tasks)}, "
                f"complete={self.complete})")
