"""Counts: introspection on the state of Fluid data (``#pragma count``).

A :class:`Count` is the paper's ``__count__<T>`` — a small observable cell
that task bodies update as they make progress ("number of pixels smoothed
so far", "current minimum pose energy", ...).  Valves watch counts; the
runtime re-evaluates the valves whenever a count changes.

Updates are routed through a *sink* so each execution backend can decide
when observers learn about a change:

* the default :class:`ImmediateSink` dispatches synchronously (fine for
  tests and for the thread backend, which adds locking on top);
* the discrete-event simulator installs a buffering sink so that updates
  made inside a work chunk become visible at the chunk's virtual
  completion time, not at the instant the Python code happens to run;
* the process backend's workers install a :class:`RecordingSink` that
  buffers updates for batched shipment to the parent process, where they
  are re-applied with :meth:`Count.replay`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple


class UpdateSink:
    """Receives ``(count, value)`` notifications; backends override this."""

    def count_updated(self, count: "Count", value: Any) -> None:
        count.dispatch(value)


class ImmediateSink(UpdateSink):
    """Dispatches every update to subscribers as soon as it happens."""


class RecordingSink(UpdateSink):
    """Buffers visible updates as picklable ``(name, value)`` records.

    Used by out-of-process workers: the worker's copies of the counts
    never dispatch locally; instead the batched records travel back to
    the parent process, which replays each one on the authoritative
    count (:meth:`Count.replay`) so valves and subscribers observe the
    exact same update sequence a single-process run would produce.
    """

    def __init__(self):
        self.buffer: List[Tuple[str, Any]] = []

    def count_updated(self, count: "Count", value: Any) -> None:
        self.buffer.append((count.name, value))

    def drain(self) -> List[Tuple[str, Any]]:
        """Return and clear the buffered update records."""
        records, self.buffer = self.buffer, []
        return records


class Count:
    """An observable counter or tracked statistic attached to Fluid data.

    Parameters
    ----------
    name:
        Identifier used in traces and diagnostics.
    initial:
        Starting value (``0`` for plain event counters).
    """

    def __init__(self, name: str, initial: Any = 0,
                 sink: Optional[UpdateSink] = None):
        self.name = name
        self._initial = initial
        self._value = initial
        self._sink = sink or ImmediateSink()
        self._subscribers: List[Callable[["Count", Any], None]] = []
        self.updates = 0
        #: Bumped whenever the count's state is replaced wholesale
        #: (``init``/``reset``/``install_state``) rather than advanced by
        #: an update.  ``(generation, updates)`` therefore changes on
        #: *every* state transition, which lets valves memoize verdicts
        #: without hashing the value itself (values may be arrays).
        self.generation = 0

    # -- state -----------------------------------------------------------

    @property
    def value(self) -> Any:
        return self._value

    def reset(self) -> None:
        """Restore the initial value (used when a region is re-armed)."""
        self._value = self._initial
        self.updates = 0
        self.generation += 1

    def init(self, value: Any) -> "Count":
        """(Re)set the starting value; mirrors ``ct.init(0)`` in Figure 3."""
        self._initial = value
        self._value = value
        self.updates = 0
        self.generation += 1
        return self

    # -- mutation (called from task bodies) -------------------------------

    def add(self, delta: Any = 1) -> None:
        """Increment the counter; the common case for progress counts."""
        self.set(self._value + delta)

    def set(self, value: Any) -> None:
        """Overwrite the tracked value (e.g. a running minimum)."""
        self._value = value
        self.updates += 1
        self._sink.count_updated(self, value)

    def track_min(self, candidate: Any) -> None:
        """Record ``candidate`` if it improves on the current minimum."""
        if self.updates == 0 or candidate < self._value:
            self.set(candidate)
        else:
            # Still an observation: convergence valves need to see that an
            # update round happened even when the minimum did not improve.
            self.set(self._value)

    def track_max(self, candidate: Any) -> None:
        """Record ``candidate`` if it exceeds the current maximum."""
        if self.updates == 0 or candidate > self._value:
            self.set(candidate)
        else:
            self.set(self._value)

    # -- cross-process state exchange -------------------------------------

    def export_state(self) -> "Tuple[Any, int]":
        """Snapshot ``(value, updates)`` for shipment to a worker process."""
        return (self._value, self.updates)

    def install_state(self, value: Any, updates: int) -> None:
        """Adopt a state exported by another process (no dispatch)."""
        self._value = value
        self.updates = updates
        self.generation += 1

    def replay(self, value: Any) -> None:
        """Re-apply one update observed in another process.

        Equivalent to the visible half of :meth:`set`: the value lands,
        the update counter advances, and subscribers are notified —
        without routing through the sink again (the update already went
        through the worker's sink once).
        """
        self._value = value
        self.updates += 1
        self.dispatch(value)

    # -- observation -----------------------------------------------------

    def subscribe(self, callback: Callable[["Count", Any], None]) -> None:
        """Register ``callback(count, value)`` for every visible update."""
        self._subscribers.append(callback)

    #: Symmetric name with :meth:`FluidData.on_update`; valves use
    #: :meth:`subscribe`, wakeup plumbing reads better with ``on_update``.
    on_update = subscribe

    def dispatch(self, value: Any) -> None:
        """Deliver one visible update to all subscribers (sink calls this)."""
        for callback in self._subscribers:
            callback(self, value)

    # -- wiring ------------------------------------------------------------

    def bind_sink(self, sink: UpdateSink) -> None:
        self._sink = sink

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Count({self.name}={self._value!r}, updates={self.updates})"
