"""Counts: introspection on the state of Fluid data (``#pragma count``).

A :class:`Count` is the paper's ``__count__<T>`` — a small observable cell
that task bodies update as they make progress ("number of pixels smoothed
so far", "current minimum pose energy", ...).  Valves watch counts; the
runtime re-evaluates the valves whenever a count changes.

Updates are routed through a *sink* so each execution backend can decide
when observers learn about a change:

* the default :class:`ImmediateSink` dispatches synchronously (fine for
  tests and for the thread backend, which adds locking on top);
* the discrete-event simulator installs a buffering sink so that updates
  made inside a work chunk become visible at the chunk's virtual
  completion time, not at the instant the Python code happens to run.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class UpdateSink:
    """Receives ``(count, value)`` notifications; backends override this."""

    def count_updated(self, count: "Count", value: Any) -> None:
        count.dispatch(value)


class ImmediateSink(UpdateSink):
    """Dispatches every update to subscribers as soon as it happens."""


class Count:
    """An observable counter or tracked statistic attached to Fluid data.

    Parameters
    ----------
    name:
        Identifier used in traces and diagnostics.
    initial:
        Starting value (``0`` for plain event counters).
    """

    def __init__(self, name: str, initial: Any = 0,
                 sink: Optional[UpdateSink] = None):
        self.name = name
        self._initial = initial
        self._value = initial
        self._sink = sink or ImmediateSink()
        self._subscribers: List[Callable[["Count", Any], None]] = []
        self.updates = 0

    # -- state -----------------------------------------------------------

    @property
    def value(self) -> Any:
        return self._value

    def reset(self) -> None:
        """Restore the initial value (used when a region is re-armed)."""
        self._value = self._initial
        self.updates = 0

    def init(self, value: Any) -> "Count":
        """(Re)set the starting value; mirrors ``ct.init(0)`` in Figure 3."""
        self._initial = value
        self._value = value
        self.updates = 0
        return self

    # -- mutation (called from task bodies) -------------------------------

    def add(self, delta: Any = 1) -> None:
        """Increment the counter; the common case for progress counts."""
        self.set(self._value + delta)

    def set(self, value: Any) -> None:
        """Overwrite the tracked value (e.g. a running minimum)."""
        self._value = value
        self.updates += 1
        self._sink.count_updated(self, value)

    def track_min(self, candidate: Any) -> None:
        """Record ``candidate`` if it improves on the current minimum."""
        if self.updates == 0 or candidate < self._value:
            self.set(candidate)
        else:
            # Still an observation: convergence valves need to see that an
            # update round happened even when the minimum did not improve.
            self.set(self._value)

    def track_max(self, candidate: Any) -> None:
        """Record ``candidate`` if it exceeds the current maximum."""
        if self.updates == 0 or candidate > self._value:
            self.set(candidate)
        else:
            self.set(self._value)

    # -- observation -----------------------------------------------------

    def subscribe(self, callback: Callable[["Count", Any], None]) -> None:
        """Register ``callback(count, value)`` for every visible update."""
        self._subscribers.append(callback)

    def dispatch(self, value: Any) -> None:
        """Deliver one visible update to all subscribers (sink calls this)."""
        for callback in self._subscribers:
            callback(self, value)

    # -- wiring ------------------------------------------------------------

    def bind_sink(self, sink: UpdateSink) -> None:
        self._sink = sink

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Count({self.name}={self._value!r}, updates={self.updates})"
