"""The ``sync(...)`` barrier API (Section 4.2).

``sync`` blocks until a task, a region, or everything submitted to an
executor has finished.  Under the simulator backend time only advances
inside :meth:`run`, so ``sync`` there simply validates that the target
already completed; under the thread backend it genuinely blocks.
"""

from __future__ import annotations

import time
from typing import Union

from .errors import SchedulerError
from .region import FluidRegion
from .states import TaskState
from .task import FluidTask

SyncTarget = Union[FluidTask, FluidRegion, None]


def _is_done(target: SyncTarget, executor) -> bool:
    if isinstance(target, FluidTask):
        return target.state is TaskState.COMPLETE
    if isinstance(target, FluidRegion):
        return target.complete
    if executor is not None and hasattr(executor, "_submissions"):
        return all(region.complete
                   for region, _after in executor._submissions)
    if executor is not None and hasattr(executor, "_runs"):
        return all(run.done for run in executor._runs)
    raise SchedulerError("sync() with no target needs an executor")


def sync(target: SyncTarget = None, executor=None,
         timeout: float = 60.0, poll: float = 0.002) -> None:
    """Block until ``target`` (or everything) completes.

    With no argument, behaves like the paper's bare ``sync()``: a barrier
    on all scheduled tasks of ``executor``.
    """
    from ..runtime.thread_backend import ThreadExecutor

    if executor is not None and not isinstance(executor, ThreadExecutor):
        # Simulated time cannot be awaited from outside runtime.run();
        # sync() degenerates to an assertion that the work already ran.
        if not _is_done(target, executor):
            raise SchedulerError(
                "sync() under the simulator requires the executor to have "
                "run; call executor.run() first")
        return
    deadline = time.perf_counter() + timeout
    while not _is_done(target, executor):
        if time.perf_counter() > deadline:
            raise SchedulerError(f"sync() timed out after {timeout}s")
        time.sleep(poll)
