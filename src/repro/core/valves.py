"""Valves: the condition functions that gate Fluid task start and end.

A valve (``#pragma valve``) is a boolean condition over counts and data.
Start valves decide when a consumer may begin eating a partially-produced
input; end valves on leaf tasks collectively form the region's *quality
function* (Section 3.1).

The stock valves below cover the paper's experiments:

* :class:`CountValve` — the paper's ``ValveCT``: satisfied once a count
  exceeds a threshold.
* :class:`PercentValve` — a count valve whose threshold is a fraction of
  a known payload size; the default start valve in Section 7.2.
* :class:`ConvergenceValve` — satisfied when a tracked statistic stopped
  improving over a window of updates (used for MedusaDock in Figure 8).
* :class:`StabilityValve` — satisfied when the fraction of elements that
  changed in recent rounds drops below a bound (K-means in Figure 8).
* :class:`PredicateValve` — an arbitrary user condition, the hook for
  "application-specific" valves promised in Section 3.3.

Threshold modulation (Sections 4.4 and 6.1): a user threshold is a
*minimum*; the runtime may tighten the effective threshold toward full
serialization after quality failures.  :meth:`Valve.tighten` implements
one tightening step and :meth:`Valve.relax_to_base` undoes it for a fresh
region instance.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .count import Count
from .data import FluidData
from .errors import ValveError


class Valve:
    """Base class: a named boolean condition over counts/data."""

    def __init__(self, name: str = "valve"):
        self.name = name
        self.checks = 0

    #: set by :meth:`declared` until ``init(...)`` is called (the paper's
    #: two-phase ``#pragma valve {ValveCT v1;}`` ... ``v1.init(ct, t)``).
    _uninitialized = False

    @classmethod
    def declared(cls, name: str) -> "Valve":
        """Create an uninitialized valve of this type (FluidPy pragma
        declaration); it must be ``init(...)``-ed before first check."""
        valve = object.__new__(cls)
        Valve.__init__(valve, name)
        valve._uninitialized = True
        return valve

    def check(self) -> bool:
        """Return True when the condition is satisfied.  Never blocks."""
        if self._uninitialized:
            raise ValveError(
                f"valve {self.name!r} checked before init(...) was called")
        self.checks += 1
        return self._satisfied()

    def _satisfied(self) -> bool:
        raise NotImplementedError

    @property
    def watched_counts(self) -> Sequence[Count]:
        """Counts whose updates may flip this valve; used for wakeups."""
        return ()

    # -- runtime threshold modulation ------------------------------------

    def tighten(self, fraction: float) -> None:
        """Move the effective threshold ``fraction`` of the way toward the
        fully-serialized setting.  No-op for valves without thresholds."""

    def relax_to_base(self) -> None:
        """Restore the user-specified threshold."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class AlwaysValve(Valve):
    """Unconditionally satisfied (useful default and test double)."""

    def _satisfied(self) -> bool:
        return True


class NeverValve(Valve):
    """Never satisfied; as a start valve it serializes on re-execution
    signals only, as an end valve it forces full re-execution chains."""

    def _satisfied(self) -> bool:
        return False


class CountValve(Valve):
    """The paper's ``ValveCT``: satisfied once ``count > threshold``.

    ``max_threshold`` is the fully-serialized setting (all updates done);
    :meth:`tighten` moves the effective threshold toward it.
    """

    def __init__(self, count: Count, threshold: float,
                 max_threshold: Optional[float] = None,
                 name: str = "valveCT"):
        super().__init__(name)
        if count is None:
            raise ValveError(f"{name}: a CountValve needs a count to watch")
        self.count = count
        self.base_threshold = float(threshold)
        self.threshold = float(threshold)
        self.max_threshold = (float(max_threshold)
                              if max_threshold is not None else float(threshold))
        if self.max_threshold < self.base_threshold:
            raise ValveError(
                f"{name}: max_threshold {self.max_threshold} below base "
                f"threshold {self.base_threshold}")

    def init(self, count: Count, threshold: float,
             max_threshold: Optional[float] = None) -> "CountValve":
        """Mirror of ``v.init(ct, t)`` from the paper's Figure 3."""
        self.count = count
        self.base_threshold = float(threshold)
        self.threshold = float(threshold)
        if max_threshold is not None:
            self.max_threshold = float(max_threshold)
        elif self._uninitialized or self.max_threshold < self.threshold:
            self.max_threshold = self.threshold
        self._uninitialized = False
        return self

    def _satisfied(self) -> bool:
        return self.count.value >= self.threshold

    @property
    def watched_counts(self) -> Sequence[Count]:
        return (self.count,)

    def tighten(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValveError(f"tighten fraction {fraction} outside [0, 1]")
        self.threshold += (self.max_threshold - self.threshold) * fraction

    def relax_to_base(self) -> None:
        self.threshold = self.base_threshold


class PercentValve(CountValve):
    """Satisfied once ``count >= fraction * total``.

    This is the default start valve of the evaluation: "the dependent
    tasks start their executions when a certain fraction of the payload
    of the producer task has completed" (Section 7.2).
    """

    def __init__(self, count: Count, fraction: float, total: float,
                 name: str = "percent"):
        if not 0.0 <= fraction <= 1.0:
            raise ValveError(f"{name}: fraction {fraction} outside [0, 1]")
        self.fraction = fraction
        self.total = float(total)
        super().__init__(count, threshold=fraction * total,
                         max_threshold=total, name=name)

    def init(self, count: Count, fraction: float,  # type: ignore[override]
             total: float) -> "PercentValve":
        """FluidPy two-phase construction: ``v.init(ct, 0.4, n)``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValveError(f"{self.name}: fraction {fraction} outside [0, 1]")
        self.fraction = fraction
        self.total = float(total)
        return super().init(count, fraction * total, max_threshold=total)


class ConvergenceValve(Valve):
    """Satisfied when a tracked statistic stops improving.

    Watches a count that records a score (e.g. the current minimum pose
    energy) and is satisfied once the best value observed has not improved
    by more than ``tolerance`` (relative) over the last ``window`` visible
    updates, with at least ``min_updates`` observations seen.
    """

    def __init__(self, count: Count, window: int = 8,
                 tolerance: float = 1e-3, min_updates: int = 1,
                 mode: str = "min", name: str = "converge"):
        super().__init__(name)
        if window < 1:
            raise ValveError(f"{name}: window must be >= 1")
        if mode not in ("min", "max"):
            raise ValveError(f"{name}: mode must be 'min' or 'max'")
        self.count = count
        self.window = window
        self.base_window = window
        self.max_window = window * 8
        self.tolerance = tolerance
        self.min_updates = min_updates
        self.mode = mode
        self._history: List[Any] = []
        count.subscribe(self._observe)

    def init(self, count: Count, window: int = 8, tolerance: float = 1e-3,
             min_updates: int = 1, mode: str = "min") -> "ConvergenceValve":
        """FluidPy two-phase construction."""
        self.__init__(count, window=window, tolerance=tolerance,
                      min_updates=min_updates, mode=mode, name=self.name)
        self._uninitialized = False
        return self

    def _observe(self, count: Count, value: Any) -> None:
        self._history.append(value)

    def _satisfied(self) -> bool:
        if len(self._history) < max(self.min_updates, self.window + 1):
            return False
        recent = self._history[-(self.window + 1):]
        old, new = recent[0], recent[-1]
        if self.mode == "min":
            improvement = old - new
        else:
            improvement = new - old
        scale = max(abs(old), abs(new), 1e-12)
        return improvement / scale <= self.tolerance

    @property
    def watched_counts(self) -> Sequence[Count]:
        return (self.count,)

    def tighten(self, fraction: float) -> None:
        self.window = min(self.max_window,
                          int(round(self.window +
                                    (self.max_window - self.window) * fraction))
                          or 1)

    def relax_to_base(self) -> None:
        self.window = self.base_window


class StabilityValve(Valve):
    """Satisfied when recent rounds changed few enough elements.

    The producer publishes, once per round, the number of elements that
    changed (e.g. pixels that switched cluster) into ``changed_count``.
    The valve is satisfied when ``changed / total <= epsilon`` for the
    last ``rounds`` consecutive published rounds.
    """

    def __init__(self, changed_count: Count, total: float,
                 epsilon: float = 0.01, rounds: int = 2,
                 name: str = "stability"):
        super().__init__(name)
        if total <= 0:
            raise ValveError(f"{name}: total must be positive")
        if rounds < 1:
            raise ValveError(f"{name}: rounds must be >= 1")
        self.count = changed_count
        self.total = float(total)
        self.epsilon = epsilon
        self.rounds = rounds
        self.base_rounds = rounds
        self.max_rounds = rounds * 8
        self._history: List[float] = []
        changed_count.subscribe(self._observe)

    def init(self, changed_count: Count, total: float, epsilon: float = 0.01,
             rounds: int = 2) -> "StabilityValve":
        """FluidPy two-phase construction."""
        self.__init__(changed_count, total, epsilon=epsilon, rounds=rounds,
                      name=self.name)
        self._uninitialized = False
        return self

    def _observe(self, count: Count, value: Any) -> None:
        self._history.append(float(value))

    def _satisfied(self) -> bool:
        if len(self._history) < self.rounds:
            return False
        recent = self._history[-self.rounds:]
        return all(changed / self.total <= self.epsilon for changed in recent)

    @property
    def watched_counts(self) -> Sequence[Count]:
        return (self.count,)

    def tighten(self, fraction: float) -> None:
        self.rounds = min(self.max_rounds,
                          self.rounds +
                          max(1, int((self.max_rounds - self.rounds) * fraction)))

    def relax_to_base(self) -> None:
        self.rounds = self.base_rounds


class PredicateValve(Valve):
    """An arbitrary application-specific condition.

    ``predicate`` is re-evaluated on every check; ``watches`` lists the
    counts whose updates should trigger re-checks.
    """

    def __init__(self, predicate: Callable[[], bool],
                 watches: Sequence[Count] = (), name: str = "predicate"):
        super().__init__(name)
        self.predicate = predicate
        self._watches = tuple(watches)

    def _satisfied(self) -> bool:
        return bool(self.predicate())

    @property
    def watched_counts(self) -> Sequence[Count]:
        return self._watches


class DataFinalValve(Valve):
    """Satisfied once a data cell is final: the fully-serialized valve.

    Attaching these to every edge reproduces precise execution, which is
    exactly the paper's observation that "setting all valves to require
    the completion of antecedents ... will result in a precise execution".
    """

    def __init__(self, data: FluidData, name: str = "final"):
        super().__init__(name)
        self.data = data

    def init(self, data: FluidData) -> "DataFinalValve":
        """FluidPy two-phase construction: ``v.init(d_ready)``."""
        self.data = data
        self._uninitialized = False
        return self

    def _satisfied(self) -> bool:
        return self.data.final
