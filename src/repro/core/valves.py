"""Valves: the condition functions that gate Fluid task start and end.

A valve (``#pragma valve``) is a boolean condition over counts and data.
Start valves decide when a consumer may begin eating a partially-produced
input; end valves on leaf tasks collectively form the region's *quality
function* (Section 3.1).

The stock valves below cover the paper's experiments:

* :class:`CountValve` — the paper's ``ValveCT``: satisfied once a count
  exceeds a threshold.
* :class:`PercentValve` — a count valve whose threshold is a fraction of
  a known payload size; the default start valve in Section 7.2.
* :class:`ConvergenceValve` — satisfied when a tracked statistic stopped
  improving over a window of updates (used for MedusaDock in Figure 8).
* :class:`StabilityValve` — satisfied when the fraction of elements that
  changed in recent rounds drops below a bound (K-means in Figure 8).
* :class:`PredicateValve` — an arbitrary user condition, the hook for
  "application-specific" valves promised in Section 3.3.
* :class:`StalenessValve` — the streaming form of ``ValveCT``: satisfied
  once at most ``k`` of an expected item population are still missing
  ("consume input no staler than k"); the valve behind
  :mod:`repro.stream` stage queues (see docs/streaming.md).

Threshold modulation (Sections 4.4 and 6.1): a user threshold is a
*minimum*; the runtime may tighten the effective threshold toward full
serialization after quality failures.  :meth:`Valve.tighten` implements
one tightening step and :meth:`Valve.relax_to_base` undoes it for a fresh
region instance.

Memoization: a valve's verdict is a pure function of the state it reads
(counts, data flags) and its own thresholds.  Each stock valve knows how
to summarize that state as a *memo token* (:meth:`Valve._memo_token`);
when the token has not changed since the previous evaluation,
:meth:`Valve.check` returns the cached verdict without recomputing and
counts the call in :attr:`Valve.checks_skipped` instead of
:attr:`Valve.checks`.  Backends that re-check valves on every wakeup
(the real-time executors) skip the vast majority of evaluations this
way.  Valves whose condition the framework cannot see — the base class
and :class:`PredicateValve` — return ``None`` tokens and are never
memoized.  :func:`set_memoization` disables the cache globally (used by
A/B benchmarks and parity tests).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from .count import Count
from .data import FluidData
from .errors import ValveError

#: Global memoization switch (list so the flag is mutable in place).
_MEMOIZE = [True]


def set_memoization(enabled: bool) -> bool:
    """Turn valve-verdict memoization on/off; returns the previous state."""
    previous = _MEMOIZE[0]
    _MEMOIZE[0] = bool(enabled)
    return previous


def memoization_enabled() -> bool:
    """Whether valve-verdict memoization is currently active."""
    return _MEMOIZE[0]


class Valve:
    """Base class: a named boolean condition over counts/data."""

    def __init__(self, name: str = "valve"):
        self.name = name
        self.checks = 0
        self.checks_skipped = 0
        self._memo: Optional[Tuple[Any, bool]] = None

    #: set by :meth:`declared` until ``init(...)`` is called (the paper's
    #: two-phase ``#pragma valve {ValveCT v1;}`` ... ``v1.init(ct, t)``).
    _uninitialized = False

    @classmethod
    def declared(cls, name: str) -> "Valve":
        """Create an uninitialized valve of this type (FluidPy pragma
        declaration); it must be ``init(...)``-ed before first check."""
        valve = object.__new__(cls)
        Valve.__init__(valve, name)
        valve._uninitialized = True
        return valve

    def _require_initialized(self, operation: str) -> None:
        if self._uninitialized:
            raise ValveError(
                f"valve {self.name!r} {operation} before init(...) was called")

    def check(self) -> bool:
        """Return True when the condition is satisfied.  Never blocks.

        Calls that can be answered from the memoized verdict (the valve's
        inputs did not change since the previous evaluation) count toward
        :attr:`checks_skipped` instead of :attr:`checks`.
        """
        self._require_initialized("checked")
        token = self._memo_token() if _MEMOIZE[0] else None
        if token is not None and self._memo is not None \
                and self._memo[0] == token:
            self.checks_skipped += 1
            return self._memo[1]
        self.checks += 1
        verdict = self._satisfied()
        self._memo = (token, verdict) if token is not None else None
        return verdict

    def invalidate_memo(self) -> None:
        """Drop the cached verdict; the next check re-evaluates."""
        self._memo = None

    def _memo_token(self) -> Optional[Any]:
        """Hashable-comparable summary of everything :meth:`_satisfied`
        reads, or ``None`` when the valve cannot be memoized (the default:
        opaque user conditions)."""
        return None

    def _satisfied(self) -> bool:
        raise NotImplementedError

    @property
    def watched_counts(self) -> Sequence[Count]:
        """Counts whose updates may flip this valve; used for wakeups."""
        return ()

    # -- runtime threshold modulation ------------------------------------

    def tighten(self, fraction: float) -> None:
        """Move the effective threshold ``fraction`` of the way toward the
        fully-serialized setting.  No-op for valves without thresholds."""
        self._require_initialized("tightened")

    def relax_to_base(self) -> None:
        """Restore the user-specified threshold."""
        self._require_initialized("relaxed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class AlwaysValve(Valve):
    """Unconditionally satisfied (useful default and test double)."""

    def _satisfied(self) -> bool:
        return True

    def _memo_token(self) -> Optional[Any]:
        return ()


class NeverValve(Valve):
    """Never satisfied; as a start valve it serializes on re-execution
    signals only, as an end valve it forces full re-execution chains."""

    def _satisfied(self) -> bool:
        return False

    def _memo_token(self) -> Optional[Any]:
        return ()


class CountValve(Valve):
    """The paper's ``ValveCT``: satisfied once ``count > threshold``.

    ``max_threshold`` is the fully-serialized setting (all updates done);
    :meth:`tighten` moves the effective threshold toward it.
    """

    def __init__(self, count: Count, threshold: float,
                 max_threshold: Optional[float] = None,
                 name: str = "valveCT"):
        super().__init__(name)
        if count is None:
            raise ValveError(f"{name}: a CountValve needs a count to watch")
        self.count = count
        self.base_threshold = float(threshold)
        self.threshold = float(threshold)
        self.max_threshold = (float(max_threshold)
                              if max_threshold is not None else float(threshold))
        if self.max_threshold < self.base_threshold:
            raise ValveError(
                f"{name}: max_threshold {self.max_threshold} below base "
                f"threshold {self.base_threshold}")

    def init(self, count: Count, threshold: float,
             max_threshold: Optional[float] = None) -> "CountValve":
        """Mirror of ``v.init(ct, t)`` from the paper's Figure 3."""
        self.count = count
        self.base_threshold = float(threshold)
        self.threshold = float(threshold)
        if max_threshold is not None:
            self.max_threshold = float(max_threshold)
        elif self._uninitialized or self.max_threshold < self.threshold:
            self.max_threshold = self.threshold
        self._uninitialized = False
        return self

    def _satisfied(self) -> bool:
        return self.count.value >= self.threshold

    def _memo_token(self) -> Optional[Any]:
        # (generation, updates) advances on every count state change; the
        # value itself stays out of the token (it may be an array).
        count = self.count
        return (id(count), count.generation, count.updates, self.threshold)

    @property
    def watched_counts(self) -> Sequence[Count]:
        return (self.count,)

    def tighten(self, fraction: float) -> None:
        self._require_initialized("tightened")
        if not 0.0 <= fraction <= 1.0:
            raise ValveError(f"tighten fraction {fraction} outside [0, 1]")
        self.threshold += (self.max_threshold - self.threshold) * fraction

    def relax_to_base(self) -> None:
        self._require_initialized("relaxed")
        self.threshold = self.base_threshold


class PercentValve(CountValve):
    """Satisfied once ``count >= fraction * total``.

    This is the default start valve of the evaluation: "the dependent
    tasks start their executions when a certain fraction of the payload
    of the producer task has completed" (Section 7.2).
    """

    def __init__(self, count: Count, fraction: float, total: float,
                 name: str = "percent"):
        if not 0.0 <= fraction <= 1.0:
            raise ValveError(f"{name}: fraction {fraction} outside [0, 1]")
        self.fraction = fraction
        self.total = float(total)
        super().__init__(count, threshold=fraction * total,
                         max_threshold=total, name=name)

    def init(self, count: Count, fraction: float,  # type: ignore[override]
             total: float) -> "PercentValve":
        """FluidPy two-phase construction: ``v.init(ct, 0.4, n)``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValveError(f"{self.name}: fraction {fraction} outside [0, 1]")
        self.fraction = fraction
        self.total = float(total)
        return super().init(count, fraction * total, max_threshold=total)


class StalenessValve(CountValve):
    """Satisfied once at most ``k`` of ``expected`` items are missing.

    The continuous-operation reading of the paper's ``ValveCT``: a
    stage queue settles items one by one (delivered or deliberately
    shed), and a consumer may proceed while up to ``k`` items are still
    outstanding — "consume input no staler than k".  As a start valve it
    admits a pipeline stage early; as an end valve it is the quality
    bound "the committed output misses at most k items".

    Implemented as a :class:`CountValve` with ``threshold = expected -
    k`` and ``max_threshold = expected``, so everything count valves
    already have works unchanged: verdict memoization, threshold
    modulation (:meth:`tighten` moves *k* toward 0, i.e. toward full
    serialization), and closed-loop autotuning — the
    :class:`~repro.tuning.ValveAutotuner` actuates the inherited
    threshold, steering ``k`` between the declared bound and 0.
    ``k = 0`` is the lossless FIFO setting: all ``expected`` items must
    be settled, which reproduces precise execution.
    """

    def __init__(self, count: Count, expected: float, k: float = 0,
                 name: str = "staleness"):
        expected = float(expected)
        k = float(k)
        if expected < 0:
            raise ValveError(f"{name}: expected {expected} must be >= 0")
        if not 0.0 <= k <= expected:
            raise ValveError(
                f"{name}: staleness bound k={k} outside [0, {expected:g}]")
        self.expected = expected
        super().__init__(count, threshold=expected - k,
                         max_threshold=expected, name=name)

    def init(self, count: Count, expected: float,  # type: ignore[override]
             k: float = 0) -> "StalenessValve":
        """FluidPy two-phase construction: ``v.init(settled, n, k)``."""
        expected = float(expected)
        k = float(k)
        if not 0.0 <= k <= expected:
            raise ValveError(
                f"{self.name}: staleness bound k={k} outside "
                f"[0, {expected:g}]")
        self.expected = expected
        return super().init(count, expected - k, max_threshold=expected)

    @property
    def k(self) -> float:
        """The *effective* staleness bound under the current threshold.

        Modulation and autotuning move :attr:`threshold` toward
        ``expected`` (k -> 0); consumers that scale their tolerance with
        the valve (stage-queue drains) read this, not the constructor
        argument.
        """
        return max(0.0, self.expected - self.threshold)

    @property
    def base_k(self) -> float:
        """The user-declared staleness bound (before modulation)."""
        return max(0.0, self.expected - self.base_threshold)

    def set_k(self, k: float) -> None:
        """Directly re-point the effective bound (keeps base intact)."""
        if not 0.0 <= k <= self.expected:
            raise ValveError(
                f"{self.name}: staleness bound k={k} outside "
                f"[0, {self.expected:g}]")
        self.threshold = self.expected - float(k)
        self.invalidate_memo()


class ConvergenceValve(Valve):
    """Satisfied when a tracked statistic stops improving.

    Watches a count that records a score (e.g. the current minimum pose
    energy) and is satisfied once the best value observed has not improved
    by more than ``tolerance`` (relative) over the last ``window`` visible
    updates, with at least ``min_updates`` observations seen.
    """

    def __init__(self, count: Count, window: int = 8,
                 tolerance: float = 1e-3, min_updates: int = 1,
                 mode: str = "min", name: str = "converge"):
        super().__init__(name)
        if window < 1:
            raise ValveError(f"{name}: window must be >= 1")
        if mode not in ("min", "max"):
            raise ValveError(f"{name}: mode must be 'min' or 'max'")
        self.count = count
        self.window = window
        self.base_window = window
        self.max_window = window * 8
        self.tolerance = tolerance
        self.min_updates = min_updates
        self.mode = mode
        self._history: List[Any] = []
        count.subscribe(self._observe)

    def init(self, count: Count, window: int = 8, tolerance: float = 1e-3,
             min_updates: int = 1, mode: str = "min") -> "ConvergenceValve":
        """FluidPy two-phase construction."""
        self.__init__(count, window=window, tolerance=tolerance,
                      min_updates=min_updates, mode=mode, name=self.name)
        self._uninitialized = False
        return self

    def _observe(self, count: Count, value: Any) -> None:
        self._history.append(value)

    def _satisfied(self) -> bool:
        if len(self._history) < max(self.min_updates, self.window + 1):
            return False
        recent = self._history[-(self.window + 1):]
        old, new = recent[0], recent[-1]
        if self.mode == "min":
            improvement = old - new
        else:
            improvement = new - old
        scale = max(abs(old), abs(new), 1e-12)
        return improvement / scale <= self.tolerance

    def _memo_token(self) -> Optional[Any]:
        return (id(self.count), len(self._history), self.window)

    @property
    def watched_counts(self) -> Sequence[Count]:
        return (self.count,)

    def tighten(self, fraction: float) -> None:
        self._require_initialized("tightened")
        self.window = min(self.max_window,
                          int(round(self.window +
                                    (self.max_window - self.window) * fraction))
                          or 1)

    def relax_to_base(self) -> None:
        self._require_initialized("relaxed")
        self.window = self.base_window


class StabilityValve(Valve):
    """Satisfied when recent rounds changed few enough elements.

    The producer publishes, once per round, the number of elements that
    changed (e.g. pixels that switched cluster) into ``changed_count``.
    The valve is satisfied when ``changed / total <= epsilon`` for the
    last ``rounds`` consecutive published rounds.
    """

    def __init__(self, changed_count: Count, total: float,
                 epsilon: float = 0.01, rounds: int = 2,
                 name: str = "stability"):
        super().__init__(name)
        if total <= 0:
            raise ValveError(f"{name}: total must be positive")
        if rounds < 1:
            raise ValveError(f"{name}: rounds must be >= 1")
        self.count = changed_count
        self.total = float(total)
        self.epsilon = epsilon
        self.rounds = rounds
        self.base_rounds = rounds
        self.max_rounds = rounds * 8
        self._history: List[float] = []
        changed_count.subscribe(self._observe)

    def init(self, changed_count: Count, total: float, epsilon: float = 0.01,
             rounds: int = 2) -> "StabilityValve":
        """FluidPy two-phase construction."""
        self.__init__(changed_count, total, epsilon=epsilon, rounds=rounds,
                      name=self.name)
        self._uninitialized = False
        return self

    def _observe(self, count: Count, value: Any) -> None:
        self._history.append(float(value))

    def _satisfied(self) -> bool:
        if len(self._history) < self.rounds:
            return False
        recent = self._history[-self.rounds:]
        return all(changed / self.total <= self.epsilon for changed in recent)

    def _memo_token(self) -> Optional[Any]:
        return (id(self.count), len(self._history), self.rounds)

    @property
    def watched_counts(self) -> Sequence[Count]:
        return (self.count,)

    def tighten(self, fraction: float) -> None:
        self._require_initialized("tightened")
        self.rounds = min(self.max_rounds,
                          self.rounds +
                          max(1, int((self.max_rounds - self.rounds) * fraction)))

    def relax_to_base(self) -> None:
        self._require_initialized("relaxed")
        self.rounds = self.base_rounds


class PredicateValve(Valve):
    """An arbitrary application-specific condition.

    ``predicate`` is re-evaluated on every check; ``watches`` lists the
    counts whose updates should trigger re-checks.
    """

    def __init__(self, predicate: Callable[[], bool],
                 watches: Sequence[Count] = (), name: str = "predicate"):
        super().__init__(name)
        self.predicate = predicate
        self._watches = tuple(watches)

    def _satisfied(self) -> bool:
        return bool(self.predicate())

    @property
    def watched_counts(self) -> Sequence[Count]:
        return self._watches


class DataFinalValve(Valve):
    """Satisfied once a data cell is final: the fully-serialized valve.

    Attaching these to every edge reproduces precise execution, which is
    exactly the paper's observation that "setting all valves to require
    the completion of antecedents ... will result in a precise execution".
    """

    def __init__(self, data: FluidData, name: str = "final"):
        super().__init__(name)
        self.data = data

    def init(self, data: FluidData) -> "DataFinalValve":
        """FluidPy two-phase construction: ``v.init(d_ready)``."""
        self.data = data
        self._uninitialized = False
        return self

    def _satisfied(self) -> bool:
        return self.data.final

    def _memo_token(self) -> Optional[Any]:
        data = self.data
        return (id(data), data.version, data.final)
