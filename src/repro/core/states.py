"""The seven-state Fluid task state machine (paper Figure 5).

States
------
``INIT`` (I)
    The task object exists; its guard has just been launched.
``START_CHECK`` (CS)
    The guard is waiting for all start valves to be satisfied.
``RUNNING`` (R)
    The task body is executing (possibly a re-execution).
``END_CHECK`` (CE)
    The body finished; the guard evaluates the three completion conditions.
``COMPLETE`` (C)
    Terminal state.
``WAITING`` (W)
    None of the completion conditions held; the task waits for signals:
    descendant-completion (→ C), parent data update (→ R), or a child's
    re-execution request (→ D).
``DEP_STALLED`` (D)
    A child requested more accurate output, but this task's own inputs
    have not improved yet; it waits for its parents before re-running.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, List

from .errors import StateError


class TaskState(enum.Enum):
    INIT = "I"
    START_CHECK = "CS"
    RUNNING = "R"
    END_CHECK = "CE"
    COMPLETE = "C"
    WAITING = "W"
    DEP_STALLED = "D"

    def __str__(self) -> str:
        return self.name


#: The legal transitions of Figure 5, plus three retirement arcs the paper
#: leaves implicit: ``RUNNING -> COMPLETE`` is early termination (Section
#: 6.1, a run is cancelled because every descendant already completed);
#: ``INIT/START_CHECK -> COMPLETE`` retire a task that never needs to run
#: because all of its descendants completed without its output.
LEGAL_TRANSITIONS: Dict[TaskState, FrozenSet[TaskState]] = {
    TaskState.INIT: frozenset({TaskState.START_CHECK, TaskState.COMPLETE}),
    TaskState.START_CHECK: frozenset({TaskState.RUNNING, TaskState.COMPLETE}),
    TaskState.RUNNING: frozenset({TaskState.END_CHECK, TaskState.COMPLETE}),
    TaskState.END_CHECK: frozenset({TaskState.COMPLETE, TaskState.WAITING}),
    TaskState.WAITING: frozenset({
        TaskState.COMPLETE, TaskState.RUNNING, TaskState.DEP_STALLED}),
    TaskState.DEP_STALLED: frozenset({TaskState.RUNNING, TaskState.COMPLETE}),
    TaskState.COMPLETE: frozenset(),
}


def check_transition(src: TaskState, dst: TaskState) -> None:
    """Raise :class:`StateError` unless ``src -> dst`` is a Figure-5 arc."""
    if dst not in LEGAL_TRANSITIONS[src]:
        raise StateError(f"illegal task state transition {src} -> {dst}")


#: Observers called as ``cb(task, src, dst)`` on every FluidTask
#: transition, *after* legality checking.  SchedLab's InvariantChecker
#: installs one to audit whole runs; the list is empty in normal
#: operation so the hot path pays only a truthiness test.
TRANSITION_OBSERVERS: List[Callable] = []


def add_transition_observer(callback: Callable) -> None:
    TRANSITION_OBSERVERS.append(callback)


def remove_transition_observer(callback: Callable) -> None:
    try:
        TRANSITION_OBSERVERS.remove(callback)
    except ValueError:
        pass


def notify_transition(task, src: TaskState, dst: TaskState) -> None:
    for callback in tuple(TRANSITION_OBSERVERS):
        callback(task, src, dst)
