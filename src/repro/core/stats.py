"""Per-task state-machine statistics (paper Table 3).

For every task we record how many times each state was entered and how
much time (virtual time under the simulator, wall time under the thread
backend) was spent in it.  The benchmark for Table 3 renders these
records in the same layout as the paper: one row per task, a
visit-count column block and a residence-time column block.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import StateError
from .states import TaskState

#: Column order used by Table 3 in the paper.
TABLE3_STATES = (
    TaskState.INIT,
    TaskState.START_CHECK,
    TaskState.RUNNING,
    TaskState.END_CHECK,
    TaskState.WAITING,      # the paper folds W and D into one "Wait/Stall" column
    TaskState.COMPLETE,
)


class TaskStats:
    """Visit counts and residence times for one task instance."""

    def __init__(self, task_name: str):
        self.task_name = task_name
        self.visits: Dict[TaskState, int] = {state: 0 for state in TaskState}
        self.time: Dict[TaskState, float] = {state: 0.0 for state in TaskState}
        self.runs = 0          # completed executions of the body
        self.cancelled_runs = 0
        self.failed_runs = 0   # body raised (remote/process backends)
        self.quality_failures = 0
        self._state: Optional[TaskState] = None
        self._entered_at = 0.0
        self._finished = False

    def enter(self, state: TaskState, now: float) -> None:
        """Record a transition into ``state`` at time ``now``."""
        if self._finished:
            raise StateError(
                f"task {self.task_name!r}: enter({state.name}) after "
                f"finish() — the stats are closed")
        if self._state is not None:
            self.time[self._state] += now - self._entered_at
        self.visits[state] += 1
        self._state = state
        self._entered_at = now

    def finish(self, now: float) -> None:
        """Close the books at the end of the run (task is terminal).

        Idempotent: only the first call adds the tail residence — a
        repeated ``finish()`` used to re-add it and silently inflate the
        Table 3 residence times.
        """
        if self._finished:
            return
        self._finished = True
        if self._state is not None:
            self.time[self._state] += now - self._entered_at
            self._entered_at = now

    # -- Table 3 helpers -----------------------------------------------------

    def visit_row(self) -> List[float]:
        row = []
        for state in TABLE3_STATES:
            count = self.visits[state]
            if state is TaskState.WAITING:
                count += self.visits[TaskState.DEP_STALLED]
            row.append(count)
        return row

    def time_row(self) -> List[float]:
        row = []
        for state in TABLE3_STATES:
            value = self.time[state]
            if state is TaskState.WAITING:
                value += self.time[TaskState.DEP_STALLED]
            row.append(value)
        return row


class RegionStats:
    """Aggregated statistics for all tasks of one region execution."""

    def __init__(self, region_name: str):
        self.region_name = region_name
        self.tasks: Dict[str, TaskStats] = {}
        self.makespan = 0.0
        self.overhead_time = 0.0   # framework time: init, checks, transitions

    def for_task(self, task_name: str) -> TaskStats:
        if task_name not in self.tasks:
            self.tasks[task_name] = TaskStats(task_name)
        return self.tasks[task_name]

    def merge(self, other: "RegionStats") -> None:
        """Fold another region execution into this aggregate (averaging is
        done at reporting time from visit counts)."""
        for name, stats in other.tasks.items():
            mine = self.for_task(name)
            for state in TaskState:
                mine.visits[state] += stats.visits[state]
                mine.time[state] += stats.time[state]
            mine.runs += stats.runs
            mine.cancelled_runs += stats.cancelled_runs
            mine.failed_runs += stats.failed_runs
            mine.quality_failures += stats.quality_failures
        self.makespan += other.makespan
        self.overhead_time += other.overhead_time
