"""Benchmark support: standard workloads, runners and table rendering."""

from .harness import (BenchRow, bench_overheads, run_comparison,
                      standard_suite)
from .reporting import render_series, render_table

__all__ = ["BenchRow", "bench_overheads", "run_comparison",
           "standard_suite", "render_series", "render_table"]
