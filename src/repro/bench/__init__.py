"""Benchmark support: standard workloads, runners and table rendering."""

from .baseline import (compare_to_baseline, load_baseline, save_baseline)
from .harness import (BenchRow, bench_overheads, collect_region_counters,
                      run_comparison, run_region_comparison, standard_suite)
from .reporting import render_series, render_table

__all__ = ["BenchRow", "bench_overheads", "collect_region_counters",
           "compare_to_baseline", "load_baseline", "run_comparison",
           "run_region_comparison", "save_baseline",
           "standard_suite", "render_series", "render_table"]
