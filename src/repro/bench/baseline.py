"""Persistent, machine-readable benchmark baselines.

``python -m repro.bench --save-baseline BENCH_<rev>.json`` snapshots
one bench run — per-workload latency, valve-check and re-execution
counters plus the run configuration — and ``--compare BENCH_<rev>.json``
re-runs the same configuration and gates on it: any workload whose
latency regressed by more than the tolerance (default 15%) fails the
comparison, and valve-check / re-execution drifts are reported so
efficiency wins (e.g. valve memoization) are visible in the same place.

The CI regression gate compares the simulator matrix, whose virtual-time
makespans are deterministic; wall-clock baselines (``--fluid-backend
thread``/``process``) are only meaningful against baselines recorded on
the same machine.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .harness import BenchRow


class MissingBaselineError(FileNotFoundError):
    """The ``--compare`` baseline file does not exist.

    A missing baseline means the regression gate cannot gate at all, so
    callers (the CLI, CI) must fail loudly rather than skip: a silently
    green gate with no baseline is how regressions ship.
    """

#: Schema tag written into every baseline file; bump on layout changes.
SCHEMA = "repro-bench-baseline/1"

#: Configuration keys that must match between a baseline and the run
#: comparing against it — comparing sim numbers to thread numbers (or a
#: different workload set) would gate on noise, not regressions.  The
#: ``memoization`` flag is deliberately NOT fatal: recording a memo-off
#: baseline and comparing a memo-on run against it is exactly the
#: before/after efficiency experiment the flag exists for, so a
#: mismatch is only noted in the report.
_CONFIG_KEYS = ("backend", "quick", "app")


def current_rev() -> str:
    """The repository revision to stamp into saved baselines."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def baseline_dict(rows: List[BenchRow], backend: str, quick: bool,
                  memoization: bool, app: Optional[str] = None,
                  repeat: int = 1, rev: Optional[str] = None) -> dict:
    """Build the JSON-serializable baseline document for one run."""
    return {
        "schema": SCHEMA,
        "rev": rev if rev is not None else current_rev(),
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {"backend": backend, "quick": bool(quick),
                   "memoization": bool(memoization), "app": app,
                   "repeat": int(repeat)},
        "workloads": {
            row.key: {
                "normalized_latency": row.normalized_latency,
                "normalized_accuracy": row.normalized_accuracy,
                "precise_makespan": row.precise_makespan,
                "fluid_makespan": row.fluid_makespan,
                "fluid_makespan_min": row.gate_makespan,
                "valve_checks": row.valve_checks,
                "valve_checks_skipped": row.valve_checks_skipped,
                "reexecutions": row.reexecutions,
            }
            for row in rows
        },
    }


def save_baseline(path: str, rows: List[BenchRow], backend: str,
                  quick: bool, memoization: bool,
                  app: Optional[str] = None, repeat: int = 1) -> dict:
    """Write a baseline file and return the document that was written."""
    document = baseline_dict(rows, backend, quick, memoization, app,
                             repeat=repeat)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_baseline(path: str) -> dict:
    """Load and schema-check a baseline file.

    Raises :class:`MissingBaselineError` when the file is absent —
    distinct from a malformed file so callers can tell "restore the
    committed baseline" apart from "re-record it".
    """
    if not os.path.exists(path):
        raise MissingBaselineError(
            f"{path}: baseline file not found — the regression gate has "
            "nothing to gate against; restore the committed baseline or "
            "re-record one with --save-baseline (docs/benchmarks.md)")
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a bench baseline (expected schema {SCHEMA!r}, "
            f"got {document.get('schema')!r})"
            if isinstance(document, dict)
            else f"{path}: not a bench baseline document")
    if not isinstance(document.get("workloads"), dict):
        raise ValueError(f"{path}: baseline has no 'workloads' table")
    return document


@dataclass
class WorkloadDelta:
    """Comparison of one workload against its baseline entry."""

    key: str
    base_latency: float
    cur_latency: float
    base_checks: int
    cur_checks: int
    base_reexecutions: int
    cur_reexecutions: int

    @property
    def latency_ratio(self) -> float:
        if self.base_latency <= 0:
            return float("inf") if self.cur_latency > 0 else 1.0
        return self.cur_latency / self.base_latency

    def regressed(self, tolerance: float) -> bool:
        return self.latency_ratio > 1.0 + tolerance


@dataclass
class ComparisonReport:
    """Outcome of gating one bench run against a recorded baseline."""

    rev: str
    tolerance: float
    deltas: List[WorkloadDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)   # in baseline only
    extra: List[str] = field(default_factory=list)     # in this run only
    config_mismatch: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[WorkloadDelta]:
        return [d for d in self.deltas if d.regressed(self.tolerance)]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.config_mismatch

    def _check_deltas(self) -> "tuple[int, int]":
        base = sum(d.base_checks for d in self.deltas)
        cur = sum(d.cur_checks for d in self.deltas)
        return base, cur

    def render(self) -> str:
        lines = [f"baseline comparison (rev {self.rev}, "
                 f"tolerance {self.tolerance:.0%}):"]
        if self.config_mismatch:
            for mismatch in self.config_mismatch:
                lines.append(f"  CONFIG MISMATCH: {mismatch}")
            lines.append("  (re-record the baseline or rerun with the "
                         "baseline's configuration)")
            return "\n".join(lines)
        for note in self.notes:
            lines.append(f"  note: {note}")
        for delta in self.deltas:
            verdict = ("REGRESSED" if delta.regressed(self.tolerance)
                       else "ok")
            lines.append(
                f"  {delta.key}: latency x{delta.latency_ratio:.3f} "
                f"[{verdict}], valve checks {delta.base_checks} -> "
                f"{delta.cur_checks}, re-executions "
                f"{delta.base_reexecutions} -> {delta.cur_reexecutions}")
        base_checks, cur_checks = self._check_deltas()
        if base_checks > 0:
            change = (cur_checks - base_checks) / base_checks
            lines.append(f"  total valve checks: {base_checks} -> "
                         f"{cur_checks} ({change:+.1%})")
        for key in self.missing:
            lines.append(f"  WARNING: baseline workload {key} not in "
                         "this run")
        for key in self.extra:
            lines.append(f"  note: workload {key} has no baseline entry")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'} "
                     f"({len(self.regressions)} latency regression(s))")
        return "\n".join(lines)


def compare_to_baseline(document: dict, rows: List[BenchRow],
                        backend: str, quick: bool, memoization: bool,
                        app: Optional[str] = None, repeat: int = 1,
                        tolerance: float = 0.15) -> ComparisonReport:
    """Gate ``rows`` against a loaded baseline document.

    Latency gates on the best-of-repeat makespan (``fluid_makespan_min``,
    falling back to the mean for pre-min baselines; on sim and for
    single runs the two coincide).  Units match the baseline run:
    virtual cost on sim, wall seconds on the real backends.  Workloads
    present on only one side are reported but do not fail the gate; a
    configuration mismatch does, since the numbers would not be
    comparable at all.
    """
    report = ComparisonReport(rev=str(document.get("rev", "?")),
                              tolerance=tolerance)
    config = document.get("config", {})
    current: Dict[str, object] = {"backend": backend, "quick": bool(quick),
                                  "memoization": bool(memoization),
                                  "app": app}
    for config_key in _CONFIG_KEYS:
        if config.get(config_key) != current[config_key]:
            report.config_mismatch.append(
                f"{config_key}: baseline={config.get(config_key)!r} "
                f"run={current[config_key]!r}")
    if report.config_mismatch:
        return report
    if config.get("repeat", 1) != int(repeat):
        report.notes.append(
            f"repeat differs (baseline={config.get('repeat', 1)}, "
            f"run={int(repeat)}); both estimate the same mean latency")
    if config.get("memoization") != current["memoization"]:
        report.notes.append(
            f"memoization differs (baseline="
            f"{config.get('memoization')!r}, run="
            f"{current['memoization']!r}); valve-check deltas show the "
            "memoization effect")

    workloads = document["workloads"]
    by_key = {row.key: row for row in rows}
    for key, entry in workloads.items():
        row = by_key.get(key)
        if row is None:
            report.missing.append(key)
            continue
        base_latency = entry.get("fluid_makespan_min",
                                 entry.get("fluid_makespan", 0.0))
        report.deltas.append(WorkloadDelta(
            key=key,
            base_latency=float(base_latency),
            cur_latency=row.gate_makespan,
            base_checks=int(entry.get("valve_checks", 0)),
            cur_checks=row.valve_checks,
            base_reexecutions=int(entry.get("reexecutions", 0)),
            cur_reexecutions=row.reexecutions))
    for key in by_key:
        if key not in workloads:
            report.extra.append(key)
    return report
