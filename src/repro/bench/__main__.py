"""Standalone benchmark runner: ``python -m repro.bench``.

Regenerates the Figure-6 headline table (and optionally a per-app
threshold sweep) without pytest — handy for quick explorations::

    python -m repro.bench                    # the Figure-6 matrix
    python -m repro.bench --quick            # one input per app
    python -m repro.bench --app kmeans       # just one app
    python -m repro.bench --sweep kmeans     # threshold sweep for one app
    python -m repro.bench --backend process  # real-core thread-vs-process

Baseline workflow (see docs/benchmarks.md)::

    python -m repro.bench --quick --save-baseline BENCH_abc123.json
    python -m repro.bench --quick --compare BENCH_abc123.json

``--compare`` exits non-zero when any workload's latency regressed by
more than ``--baseline-tolerance`` (default 15%) against the recorded
numbers; the report also tracks valve-check and re-execution drift.
``--fluid-backend thread`` runs the same matrix on real threads
(wall-clock baselines); ``--fluid-backend process`` benches the
process-contract-safe CPU-bound fan-out instead, since most Figure-6
apps alias payload buffers.

``--backend process --compare BENCH_baseline.json`` runs the real-core
dispatch gate: legacy fork-per-run, one-task-per-round-trip dispatch
against the batched persistent-pool path, failing unless the speedup
clears the baseline's ``realcore.min_speedup`` floor.
"""

from __future__ import annotations

import argparse
import logging
import sys

import numpy as np

from ..core.valves import set_memoization
from .harness import (cpu_bound_shapes, run_backend_bench, run_comparison,
                      run_process_dispatch_bench, run_region_comparison,
                      standard_suite)
from .reporting import render_series, render_table

_log = logging.getLogger("repro.bench")


def collect_figure6_rows(only_app=None, quick=False, telemetry=None,
                         fluid_backend="sim", repeat=1,
                         backend_options=None, scheduler=None,
                         autotune=None):
    """Run the Figure-6 matrix; return the list of BenchRow objects."""
    rows = []
    telemetry_used = False
    for app_name, inputs in standard_suite().items():
        if only_app and app_name != only_app:
            continue
        for input_name, factory in inputs.items():
            extra = {}
            if scheduler is not None:
                extra["scheduler"] = scheduler
            if autotune is not None:
                # A spec string: each run_fluid builds a fresh tuner
                # (tuners are single-run objects).
                extra["autotune"] = autotune
            if fluid_backend != "sim":
                extra["backend"] = fluid_backend
                if backend_options:
                    extra["backend_options"] = dict(backend_options)
            # Telemetry instruments the first fluid run only: one bus
            # records one executor's clock, so artifacts stay coherent.
            if telemetry is not None and not telemetry_used:
                extra["telemetry"] = telemetry
                telemetry_used = True
            row = run_comparison(factory(), input_name, repeat=repeat,
                                 **extra)
            rows.append(row)
            print(f"  ran {app_name}/{input_name}: "
                  f"latency {row.normalized_latency:.3f}, "
                  f"accuracy {row.normalized_accuracy:.3f}, "
                  f"valve checks {row.valve_checks}"
                  + (f" (+{row.valve_checks_skipped} memoized)"
                     if row.valve_checks_skipped else ""),
                  file=sys.stderr)
            if quick:
                break
    return rows


def collect_process_rows(quick=False, telemetry=None, workers=None,
                         repeat=1):
    """Bench the process-safe CPU-bound fan-out on the process backend."""
    rows = []
    telemetry_used = False
    for input_name, (tasks, iterations) in cpu_bound_shapes(quick).items():
        extra = {}
        if telemetry is not None and not telemetry_used:
            extra["telemetry"] = telemetry
            telemetry_used = True
        row = run_region_comparison(input_name, tasks, iterations,
                                    backend="process", workers=workers,
                                    repeat=repeat, **extra)
        rows.append(row)
        print(f"  ran cpu_bound/{input_name}: "
              f"{row.fluid_makespan:.3f}s wall, "
              f"valve checks {row.valve_checks}",
              file=sys.stderr)
    return rows


def print_rows(rows, fluid_backend="sim") -> None:
    table = [row.as_list() for row in rows]
    latencies = [row.normalized_latency for row in rows]
    accuracies = [row.normalized_accuracy for row in rows]
    table.append(["AVERAGE", "-", float(np.mean(latencies)),
                  float(np.mean(accuracies)), ""])
    unit = ("virtual time" if fluid_backend == "sim"
            else f"wall clock, {fluid_backend} backend")
    print(render_table(
        f"Fluidized latency and accuracy, normalized to the original "
        f"({unit})",
        ["app", "input", "norm latency", "norm accuracy", "native"],
        table))


def run_sweep(app_name: str, thresholds) -> int:
    suite = standard_suite()
    if app_name not in suite:
        print(f"unknown app {app_name!r}; have: {', '.join(suite)}",
              file=sys.stderr)
        return 1
    input_name, factory = next(iter(suite[app_name].items()))
    app = factory()
    precise = app.run_precise()
    latencies, accuracies = [], []
    for threshold in thresholds:
        fluid = app.run_fluid(threshold=threshold)
        latencies.append(fluid.makespan / precise.makespan)
        accuracies.append(fluid.accuracy)
    print(render_series(
        f"Threshold sweep: {app_name} ({input_name})", "threshold",
        thresholds, {"norm latency": latencies,
                     "norm accuracy": accuracies}))
    return 0


def run_backends(backend: str, workers, tasks, scale: float,
                 telemetry=None) -> int:
    """Figure-12 on real cores: time ``backend`` against the thread one."""
    row = run_backend_bench(backend=backend, workers=workers, tasks=tasks,
                            scale=scale, telemetry=telemetry)
    print(render_table(
        f"Real-core backend comparison ({row.tasks} tasks x "
        f"{row.iterations} iterations, {row.workers} workers)",
        ["backend", "wall seconds", "speedup vs thread"],
        [["thread", row.thread_seconds, 1.0],
         [row.backend, row.backend_seconds, row.speedup]]))
    if not row.outputs_match:
        print("ERROR: backend outputs diverged from the precise values",
              file=sys.stderr)
        return 1
    return 0


def run_dispatch_gate(args, telemetry=None) -> int:
    """``--backend process --compare``: the batched-dispatch regression
    gate.  Reruns the baseline's ``realcore`` workload — legacy
    fork-per-run dispatch vs the batched persistent-pool path — and
    fails unless the measured speedup clears the recorded floor."""
    from . import baseline as baseline_mod

    try:
        document = baseline_mod.load_baseline(args.compare)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load baseline: {exc}", file=sys.stderr)
        return 1
    section = document.get("realcore")
    if not isinstance(section, dict):
        print(f"{args.compare}: baseline has no 'realcore' section; "
              "re-record it (see docs/benchmarks.md)", file=sys.stderr)
        return 1
    workload = section.get("workload", {})
    row = run_process_dispatch_bench(
        workers=args.workers or workload.get("workers"),
        tasks=args.tasks or int(workload.get("tasks", 24)),
        iterations=int(workload.get("iterations", 3000)),
        rounds=int(workload.get("rounds", 6)),
        batch_size=int(workload.get("batch_size", 16)),
        telemetry=telemetry)
    min_speedup = float(section.get("min_speedup", 1.3))
    print(render_table(
        f"Process dispatch gate ({row.rounds} rounds x {row.tasks} tasks "
        f"x {row.iterations} iterations, {row.workers} workers, "
        f"batch {row.batch_size})",
        ["path", "wall seconds", "throughput vs legacy"],
        [["legacy fork-per-run", row.legacy_seconds, 1.0],
         ["batched pool", row.pooled_seconds, row.speedup]]))
    if not row.outputs_match:
        print("ERROR: backend outputs diverged from the precise values",
              file=sys.stderr)
        return 1
    verdict = row.speedup >= min_speedup
    print(f"  dispatch speedup x{row.speedup:.2f} vs required "
          f"x{min_speedup:.2f}: {'PASS' if verdict else 'FAIL'}")
    return 0 if verdict else 1


def run_matrix(args, telemetry=None) -> int:
    """The row-producing modes: Figure-6 matrix or process-safe regions,
    optionally recording or gating against a persistent baseline."""
    from . import baseline as baseline_mod

    memoization = not args.no_valve_memo
    repeat = args.repeat
    if repeat is None:
        # Wall-clock backends need per-workload means; sim is exact.
        repeat = 1 if args.fluid_backend == "sim" else 5
    previous = set_memoization(memoization)
    try:
        if args.fluid_backend == "process":
            if args.app:
                print("--fluid-backend process benches the process-safe "
                      "cpu_bound workload; --app does not apply",
                      file=sys.stderr)
                return 1
            rows = collect_process_rows(quick=args.quick,
                                        telemetry=telemetry,
                                        workers=args.workers,
                                        repeat=repeat)
        else:
            backend_options = {}
            if args.legacy_polling:
                # The pre-event-driven runtime: no data-cell wake
                # subscriptions, guards re-check on every poll tick.
                backend_options["event_wakeups"] = False
                backend_options["fallback_interval"] = 0.002
            if args.fallback_interval is not None:
                backend_options["fallback_interval"] = (
                    args.fallback_interval)
            rows = collect_figure6_rows(args.app, quick=args.quick,
                                        telemetry=telemetry,
                                        fluid_backend=args.fluid_backend,
                                        repeat=repeat,
                                        backend_options=backend_options,
                                        scheduler=args.scheduler,
                                        autotune=args.autotune)
    finally:
        set_memoization(previous)
    if not rows:
        print(f"unknown app {args.app!r}; have: "
              f"{', '.join(standard_suite())}", file=sys.stderr)
        return 1
    print_rows(rows, fluid_backend=args.fluid_backend)

    status = 0
    if args.save_baseline:
        baseline_mod.save_baseline(
            args.save_baseline, rows, backend=args.fluid_backend,
            quick=args.quick, memoization=memoization, app=args.app,
            repeat=repeat)
        print(f"  saved baseline to {args.save_baseline}", file=sys.stderr)
    if args.compare:
        try:
            document = baseline_mod.load_baseline(args.compare)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 1
        report = baseline_mod.compare_to_baseline(
            document, rows, backend=args.fluid_backend, quick=args.quick,
            memoization=memoization, app=args.app, repeat=repeat,
            tolerance=args.baseline_tolerance)
        print(report.render())
        status = 0 if report.ok else 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's headline numbers.")
    parser.add_argument("--app", help="restrict to one application")
    parser.add_argument("--sweep", metavar="APP",
                        help="threshold sweep for one application")
    parser.add_argument("--thresholds", default="0.2,0.4,0.6,0.8,1.0",
                        help="comma-separated sweep thresholds")
    parser.add_argument("--backend", choices=("sim", "thread", "process"),
                        help="backend to benchmark: 'thread'/'process' time "
                             "a CPU-bound fan-out on real cores against the "
                             "thread baseline; 'sim' (the default) runs the "
                             "Figure-6 matrix on the simulator")
    parser.add_argument("--fluid-backend",
                        choices=("sim", "thread", "process"), default="sim",
                        help="backend executing the fluid runs of the "
                             "matrix: 'sim' (default, virtual time), "
                             "'thread' (the same apps, wall clock), or "
                             "'process' (the process-contract-safe "
                             "cpu_bound fan-out, wall clock)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test sizing: one input per app for the "
                             "Figure-6 matrix, a smaller real-core workload")
    parser.add_argument("--scale", type=float, default=None,
                        help="iteration-count multiplier for the real-core "
                             "backend workload (default 1.0, or 0.05 with "
                             "--quick)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --backend process "
                             "(default: all cores)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="fan-out width for the real-core backend "
                             "workload (default: max(2, workers))")
    parser.add_argument("--repeat", type=int, default=None,
                        help="fluid runs per workload; rows record the "
                             "mean (default 1 on the simulator, 5 on the "
                             "wall-clock fluid backends)")
    parser.add_argument("--fallback-interval", type=float, default=None,
                        help="thread-backend guard fallback wait in "
                             "seconds (thread matrix only)")
    parser.add_argument("--legacy-polling", action="store_true",
                        help="run the thread matrix with event wakeups "
                             "disabled and a poll-tick fallback — the "
                             "pre-event-driven runtime, for before/after "
                             "baselines (pair with --no-valve-memo)")
    parser.add_argument("--scheduler", default=None, metavar="SPEC",
                        help="repro.sched discipline for the matrix's fluid "
                             "runs (e.g. edf, priority, "
                             "bounded:capacity=8,inner=sew); default: the "
                             "paper-faithful fcfs.  Figure-6 matrix only "
                             "(sim/thread fluid backends)")
    parser.add_argument("--autotune", default=None, metavar="SPEC",
                        help="repro.tuning closed-loop autotune spec for the "
                             "matrix's fluid runs (e.g. "
                             "accuracy_floor:target=0.9,window=1); default: "
                             "static valves.  Figure-6 matrix only.  For the "
                             "SLO x controller sweep use python -m "
                             "repro.bench.autotune_sweep")
    parser.add_argument("--no-valve-memo", action="store_true",
                        help="disable valve-check memoization for the run "
                             "(for before/after efficiency comparisons)")
    parser.add_argument("--save-baseline", metavar="PATH",
                        help="write a machine-readable baseline JSON "
                             "(per-workload latency, valve checks, "
                             "re-executions) for later --compare runs")
    parser.add_argument("--compare", metavar="PATH",
                        help="gate this run against a recorded baseline; "
                             "exits non-zero on latency regressions beyond "
                             "--baseline-tolerance")
    parser.add_argument("--baseline-tolerance", type=float, default=0.15,
                        help="allowed fractional latency increase per "
                             "workload before --compare fails "
                             "(default 0.15)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome/Perfetto trace JSON of the "
                             "first (or measured) fluid run")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a telemetry metrics JSON dump of the "
                             "first (or measured) fluid run "
                             "(inspect with python -m repro.telemetry)")
    parser.add_argument("--debug", action="store_true",
                        help="re-raise spec/validation errors with their "
                             "full traceback instead of the one-line CLI "
                             "error (tracebacks are always logged at "
                             "debug level)")
    args = parser.parse_args(argv)

    if ((args.legacy_polling or args.fallback_interval is not None)
            and args.fluid_backend != "thread"):
        parser.error("--legacy-polling/--fallback-interval are thread-"
                     "backend knobs; use --fluid-backend thread")
    if (args.save_baseline or args.compare) and args.sweep:
        parser.error("--save-baseline/--compare do not apply to --sweep")
    if args.save_baseline and args.backend in ("thread", "process"):
        parser.error("--save-baseline applies to the matrix modes only; "
                     "the real-core gate's 'realcore' section is part of "
                     "the committed matrix baseline (docs/benchmarks.md)")
    if args.compare and args.backend == "thread":
        parser.error("--compare with the real-core comparison needs "
                     "--backend process (the batched-dispatch gate)")
    if args.scheduler is not None:
        if args.sweep or args.backend in ("thread", "process") or \
                args.fluid_backend == "process":
            parser.error("--scheduler applies to the Figure-6 matrix with "
                         "--fluid-backend sim/thread only")
        from ..sched import make_scheduler

        try:
            make_scheduler(args.scheduler)
        except Exception as error:  # noqa: BLE001 - surfaced as CLI error
            _log.debug("bad --scheduler spec %r", args.scheduler,
                       exc_info=True)
            if args.debug:
                raise
            parser.error(str(error))
    if args.autotune is not None:
        if args.sweep or args.backend in ("thread", "process") or \
                args.fluid_backend == "process":
            parser.error("--autotune applies to the Figure-6 matrix with "
                         "--fluid-backend sim/thread only")
        from ..tuning import make_autotuner

        try:
            make_autotuner(args.autotune)
        except Exception as error:  # noqa: BLE001 - surfaced as CLI error
            _log.debug("bad --autotune spec %r", args.autotune,
                       exc_info=True)
            if args.debug:
                raise
            parser.error(str(error))

    telemetry = None
    if args.trace_out or args.metrics_out:
        from ..telemetry import Telemetry
        telemetry = Telemetry()

    if args.sweep:
        thresholds = [float(token) for token in
                      args.thresholds.split(",") if token]
        status = run_sweep(args.sweep, thresholds)
    elif args.backend == "process" and args.compare:
        status = run_dispatch_gate(args, telemetry=telemetry)
    elif args.backend in ("thread", "process"):
        scale = args.scale
        if scale is None:
            scale = 0.05 if args.quick else 1.0
        status = run_backends(args.backend, args.workers, args.tasks, scale,
                              telemetry=telemetry)
    else:
        status = run_matrix(args, telemetry=telemetry)
    if telemetry is not None and status == 0:
        telemetry.write(trace_out=args.trace_out,
                        metrics_out=args.metrics_out)
        for label, path in (("trace", args.trace_out),
                            ("metrics", args.metrics_out)):
            if path:
                print(f"  wrote {label} to {path}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
