"""Standalone benchmark runner: ``python -m repro.bench``.

Regenerates the Figure-6 headline table (and optionally a per-app
threshold sweep) without pytest — handy for quick explorations::

    python -m repro.bench                    # the Figure-6 matrix
    python -m repro.bench --quick            # one input per app
    python -m repro.bench --app kmeans       # just one app
    python -m repro.bench --sweep kmeans     # threshold sweep for one app
    python -m repro.bench --backend process  # real-core thread-vs-process
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .harness import run_backend_bench, run_comparison, standard_suite
from .reporting import render_series, render_table


def run_figure6(only_app=None, quick=False, telemetry=None) -> int:
    rows = []
    telemetry_used = False
    for app_name, inputs in standard_suite().items():
        if only_app and app_name != only_app:
            continue
        for input_name, factory in inputs.items():
            # Telemetry instruments the first fluid run only: one bus
            # records one executor's clock, so artifacts stay coherent.
            extra = {}
            if telemetry is not None and not telemetry_used:
                extra["telemetry"] = telemetry
                telemetry_used = True
            row = run_comparison(factory(), input_name, **extra)
            rows.append(row.as_list())
            print(f"  ran {app_name}/{input_name}: "
                  f"latency {row.normalized_latency:.3f}, "
                  f"accuracy {row.normalized_accuracy:.3f}",
                  file=sys.stderr)
            if quick:
                break
    if not rows:
        print(f"unknown app {only_app!r}; have: "
              f"{', '.join(standard_suite())}", file=sys.stderr)
        return 1
    latencies = [row[2] for row in rows]
    accuracies = [row[3] for row in rows]
    rows.append(["AVERAGE", "-", float(np.mean(latencies)),
                 float(np.mean(accuracies)), ""])
    print(render_table(
        "Fluidized latency and accuracy, normalized to the original",
        ["app", "input", "norm latency", "norm accuracy", "native"],
        rows))
    return 0


def run_sweep(app_name: str, thresholds) -> int:
    suite = standard_suite()
    if app_name not in suite:
        print(f"unknown app {app_name!r}; have: {', '.join(suite)}",
              file=sys.stderr)
        return 1
    input_name, factory = next(iter(suite[app_name].items()))
    app = factory()
    precise = app.run_precise()
    latencies, accuracies = [], []
    for threshold in thresholds:
        fluid = app.run_fluid(threshold=threshold)
        latencies.append(fluid.makespan / precise.makespan)
        accuracies.append(fluid.accuracy)
    print(render_series(
        f"Threshold sweep: {app_name} ({input_name})", "threshold",
        thresholds, {"norm latency": latencies,
                     "norm accuracy": accuracies}))
    return 0


def run_backends(backend: str, workers, tasks, scale: float,
                 telemetry=None) -> int:
    """Figure-12 on real cores: time ``backend`` against the thread one."""
    row = run_backend_bench(backend=backend, workers=workers, tasks=tasks,
                            scale=scale, telemetry=telemetry)
    print(render_table(
        f"Real-core backend comparison ({row.tasks} tasks x "
        f"{row.iterations} iterations, {row.workers} workers)",
        ["backend", "wall seconds", "speedup vs thread"],
        [["thread", row.thread_seconds, 1.0],
         [row.backend, row.backend_seconds, row.speedup]]))
    if not row.outputs_match:
        print("ERROR: backend outputs diverged from the precise values",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's headline numbers.")
    parser.add_argument("--app", help="restrict to one application")
    parser.add_argument("--sweep", metavar="APP",
                        help="threshold sweep for one application")
    parser.add_argument("--thresholds", default="0.2,0.4,0.6,0.8,1.0",
                        help="comma-separated sweep thresholds")
    parser.add_argument("--backend", choices=("sim", "thread", "process"),
                        help="backend to benchmark: 'thread'/'process' time "
                             "a CPU-bound fan-out on real cores against the "
                             "thread baseline; 'sim' (the default) runs the "
                             "Figure-6 matrix on the simulator")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test sizing: one input per app for the "
                             "Figure-6 matrix, a smaller real-core workload")
    parser.add_argument("--scale", type=float, default=None,
                        help="iteration-count multiplier for the real-core "
                             "backend workload (default 1.0, or 0.05 with "
                             "--quick)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --backend process "
                             "(default: all cores)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="fan-out width for the real-core backend "
                             "workload (default: max(2, workers))")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome/Perfetto trace JSON of the "
                             "first (or measured) fluid run")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a telemetry metrics JSON dump of the "
                             "first (or measured) fluid run "
                             "(inspect with python -m repro.telemetry)")
    args = parser.parse_args(argv)

    telemetry = None
    if args.trace_out or args.metrics_out:
        from ..telemetry import Telemetry
        telemetry = Telemetry()

    if args.sweep:
        thresholds = [float(token) for token in
                      args.thresholds.split(",") if token]
        status = run_sweep(args.sweep, thresholds)
    elif args.backend in ("thread", "process"):
        scale = args.scale
        if scale is None:
            scale = 0.05 if args.quick else 1.0
        status = run_backends(args.backend, args.workers, args.tasks, scale,
                              telemetry=telemetry)
    else:
        status = run_figure6(args.app, quick=args.quick, telemetry=telemetry)
    if telemetry is not None and status == 0:
        telemetry.write(trace_out=args.trace_out,
                        metrics_out=args.metrics_out)
        for label, path in (("trace", args.trace_out),
                            ("metrics", args.metrics_out)):
            if path:
                print(f"  wrote {label} to {path}", file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
