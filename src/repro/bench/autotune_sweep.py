"""SLO x controller x app sweep for the closed-loop valve autotuner.

``python -m repro.bench.autotune_sweep`` runs each selected app twice
per (SLO target, controller) cell — once with static valves at the
case's base threshold, once with a live :class:`~repro.tuning.
ValveAutotuner` — and reports whether the tuner met the declared
accuracy floor while beating the static makespan.  The workloads are
deliberately *not* the standard bench suite: autotuning only has a
lever when end valves actually fail (kmeans under a strict quality
function) or when the base threshold is conservative enough that
opt-in relaxation pays (segmented Bellman-Ford), so each case pins the
regime where closed-loop control is measurable.  See
docs/autotuning.md for the control-law contract.

The output document is schema ``repro-bench-baseline/1`` — one
workload row per run, keyed ``<app>/<input>:static`` or
``<app>/<input>:t<target>:<controller>`` — with an extra top-level
``autotune`` section holding per-case tuner telemetry (adjustments,
windows, final position, the decision log).  ``--check`` turns the
sweep into a gate: every tuned cell must record at least one
adjustment, hold the accuracy floor, and finish faster than its
static baseline (CI's autotune-smoke step runs ``--quick --check``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List

from ..apps.base import FluidApp
from ..apps.bellman_ford import BellmanFordApp
from ..apps.kmeans import KMeansApp
from ..tuning import make_autotuner
from ..workloads.graphs import random_graph
from ..workloads.images import synthetic_image
from .baseline import baseline_dict
from .harness import BenchRow, collect_region_counters


class SweepCase:
    """One app x input cell: factories plus its autotune spec recipe."""

    def __init__(self, app_name: str, input_name: str,
                 factory: Callable[[], FluidApp], threshold: float,
                 specs: Dict[str, str]):
        self.app_name = app_name
        self.input_name = input_name
        self.factory = factory
        self.threshold = threshold
        #: controller name -> spec-option tail appended after the target.
        self.specs = specs

    def spec_for(self, target: float, controller: str) -> str:
        tail = self.specs[controller]
        return f"accuracy_floor:target={target:g},{tail}"


def _kmeans_cases(quick: bool) -> List[SweepCase]:
    # quality_fraction=1.0 makes every epoch's end valve strict, so an
    # aggressive static threshold pays re-execution churn the tuner can
    # tighten away while keeping more overlap than full serialization.
    def build(diversity: int, seed: int) -> Callable[[], FluidApp]:
        def factory() -> FluidApp:
            return KMeansApp(synthetic_image(40, 40, diversity=diversity,
                                             seed=seed),
                             num_clusters=5, epochs=5,
                             quality_fraction=1.0)
        return factory

    specs = {
        "aimd": "window=1",
        # The strict-quality regime needs decisive steps: one failed
        # epoch must tighten enough that the next producer finishes by
        # its consumer's end check.
        "hysteresis": "window=1,controller=hysteresis,gain=2.0,max_step=1.0",
    }
    cases = [SweepCase("kmeans", "div6", build(6, 83), 0.2, specs)]
    if not quick:
        cases.append(SweepCase("kmeans", "div9", build(9, 83), 0.2, specs))
    return cases


def _bellman_ford_cases(quick: bool) -> List[SweepCase]:
    # Segmented chains give the tuner per-segment quality verdicts and
    # a threshold lever that still matters after the run has started;
    # the conservative 0.5 base threshold leaves relaxation headroom
    # that the opt-in relax_floor lets the controller spend.
    def build(vertices: int, edges: int, seed: int) -> Callable[[], FluidApp]:
        def factory() -> FluidApp:
            graph = random_graph(vertices, edges, seed=seed,
                                 name=f"{vertices // 1000}K")
            return BellmanFordApp(graph, iterations=8, segments=4)
        return factory

    specs = {
        "aimd": "window=1,relax_floor=0.1,relax_step=0.35",
        "hysteresis": ("window=1,relax_floor=0.1,"
                       "controller=hysteresis,gain=3.0,max_step=0.35"),
    }
    cases = [SweepCase("bellman_ford", "1K_4K", build(1000, 4000, 11),
                       0.5, specs)]
    if not quick:
        cases.append(SweepCase("bellman_ford", "2K_8K",
                               build(2000, 8000, 7), 0.5, specs))
    return cases


CASE_BUILDERS = {
    "kmeans": _kmeans_cases,
    "bellman_ford": _bellman_ford_cases,
}


def _run_once(case: SweepCase, autotune=None):
    """One fluid run of the case; returns (row suffix data, run, precise)."""
    app = case.factory()
    precise = app.run_precise()
    run = app.run_fluid(threshold=case.threshold, autotune=autotune)
    checks, skipped, reexecutions = collect_region_counters(run.regions)
    return app, precise, run, (checks, skipped, reexecutions)


def _make_row(app: FluidApp, input_name: str, precise, run,
              counters) -> BenchRow:
    checks, skipped, reexecutions = counters
    return BenchRow(
        app=app.name, input_name=input_name,
        normalized_latency=run.makespan / precise.makespan,
        normalized_accuracy=run.accuracy,
        native_metric=run.metric_name, native_value=run.metric,
        precise_makespan=precise.makespan, fluid_makespan=run.makespan,
        valve_checks=checks, valve_checks_skipped=skipped,
        reexecutions=reexecutions)


def run_sweep(apps: List[str], targets: List[float],
              controllers: List[str], quick: bool) -> "tuple[list, list]":
    """Run the full grid; returns (BenchRow list, case-detail list)."""
    rows: List[BenchRow] = []
    details: List[dict] = []
    for app_name in apps:
        for case in CASE_BUILDERS[app_name](quick):
            app, precise, static_run, static_counters = _run_once(case)
            static_name = f"{case.input_name}:static"
            rows.append(_make_row(app, static_name, precise, static_run,
                                  static_counters))
            for target in targets:
                for controller in controllers:
                    spec = case.spec_for(target, controller)
                    tuner = make_autotuner(spec)
                    app2, precise2, run, counters = _run_once(
                        case, autotune=tuner)
                    name = f"{case.input_name}:t{target:g}:{controller}"
                    rows.append(_make_row(app2, name, precise2, run,
                                          counters))
                    snapshot = tuner.snapshot()
                    details.append({
                        "app": app2.name,
                        "input": case.input_name,
                        "workload": f"{app2.name}/{name}",
                        "static_workload": f"{app2.name}/{static_name}",
                        "target": target,
                        "controller": controller,
                        "spec": spec,
                        "threshold": case.threshold,
                        "static_makespan": static_run.makespan,
                        "tuned_makespan": run.makespan,
                        "accuracy": run.accuracy,
                        "tuner": snapshot,
                    })
    return rows, details


def check_details(details: List[dict]) -> List[str]:
    """The --check gate: returns human-readable failures (empty = pass)."""
    failures: List[str] = []
    for case in details:
        label = f"{case['workload']} ({case['spec']})"
        if case["tuner"]["adjustments"] < 1:
            failures.append(f"{label}: tuner made no adjustments")
        if case["accuracy"] < case["target"]:
            failures.append(
                f"{label}: accuracy {case['accuracy']:.4f} below the "
                f"declared floor {case['target']:g}")
        if not case["tuned_makespan"] < case["static_makespan"]:
            failures.append(
                f"{label}: tuned makespan {case['tuned_makespan']:.1f} "
                f"did not beat static {case['static_makespan']:.1f}")
    return failures


def _render(rows: List[BenchRow], details: List[dict]) -> str:
    lines = [f"{'workload':<42} {'norm_lat':>9} {'accuracy':>9} "
             f"{'adjust':>7} {'position':>9}"]
    by_workload = {case["workload"]: case for case in details}
    for row in rows:
        case = by_workload.get(row.key)
        adjust = str(case["tuner"]["adjustments"]) if case else "-"
        position = (f"{case['tuner']['position']:+.2f}" if case else "-")
        lines.append(f"{row.key:<42} {row.normalized_latency:>9.4f} "
                     f"{row.normalized_accuracy:>9.4f} {adjust:>7} "
                     f"{position:>9}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.autotune_sweep",
        description="SLO target x controller x app autotuning sweep")
    parser.add_argument("--apps", default="kmeans,bellman_ford",
                        help="comma list from: "
                             + ", ".join(sorted(CASE_BUILDERS)))
    parser.add_argument("--targets", default="0.9",
                        help="comma list of accuracy-floor targets")
    parser.add_argument("--controllers", default="aimd,hysteresis",
                        help="comma list of control laws to sweep")
    parser.add_argument("--quick", action="store_true",
                        help="one input per app (CI smoke size)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the repro-bench-baseline/1 document "
                             "(with the extra 'autotune' section) here")
    parser.add_argument("--check", action="store_true",
                        help="fail unless every tuned cell adjusted at "
                             "least once, held its floor, and beat the "
                             "static makespan")
    args = parser.parse_args(argv)

    apps = [name.strip() for name in args.apps.split(",") if name.strip()]
    for name in apps:
        if name not in CASE_BUILDERS:
            parser.error(f"unknown app {name!r}; expected one of "
                         + ", ".join(sorted(CASE_BUILDERS)))
    try:
        targets = [float(value) for value in args.targets.split(",")
                   if value.strip()]
    except ValueError:
        parser.error(f"--targets must be numbers, got {args.targets!r}")
    controllers = [name.strip() for name in args.controllers.split(",")
                   if name.strip()]
    for name in controllers:
        if name not in ("aimd", "hysteresis"):
            parser.error(f"unknown controller {name!r}")

    rows, details = run_sweep(apps, targets, controllers, args.quick)
    print(_render(rows, details))

    if args.out:
        document = baseline_dict(rows, backend="sim", quick=args.quick,
                                 memoization=True, app="autotune")
        document["autotune"] = {"slo": "accuracy_floor", "cases": details}
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.out} ({len(rows)} workloads, "
              f"{len(details)} tuned cells)")

    if args.check:
        failures = check_details(details)
        if failures:
            print("\nautotune sweep check FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("\nautotune sweep check passed: every tuned cell "
              "adjusted, held its floor, and beat static")
    return 0


if __name__ == "__main__":
    sys.exit(main())
