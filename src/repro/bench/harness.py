"""Standard benchmark workloads and comparison runners.

``standard_suite`` builds the application/input matrix of the paper's
Figure 6 at repository scale (inputs sized so the whole benchmark run
finishes in minutes on a laptop while preserving every sensitivity axis:
graph density, image noise, vector size, network width, protein count).
``run_comparison`` executes precise-vs-fluid for one app and returns a
:class:`BenchRow` with the normalized numbers the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..apps.base import DEFAULT_OVERHEADS, FluidApp
from ..apps.bellman_ford import BellmanFordApp
from ..apps.dct import DCTApp
from ..apps.edge_detection import EdgeDetectionApp
from ..apps.fft import FFTApp
from ..apps.graph_coloring import GraphColoringApp
from ..apps.kmeans import KMeansApp
from ..apps.medusadock import MedusaDockApp
from ..apps.neural_network import NeuralNetworkApp
from ..workloads import (image_classes, random_graph, random_tensor,
                         random_vector, synthetic_digits, synthetic_image,
                         synthetic_poses)

#: Per-app valve used for the headline Figure-6 numbers; MedusaDock's
#: preferred valve is convergence (Section 7.3).
HEADLINE_VALVE: Dict[str, str] = {"medusadock": "convergence"}


@dataclass
class BenchRow:
    """One normalized latency/accuracy data point."""

    app: str
    input_name: str
    normalized_latency: float
    normalized_accuracy: float
    native_metric: str
    native_value: float
    precise_makespan: float
    fluid_makespan: float

    def as_list(self) -> List:
        return [self.app, self.input_name,
                self.normalized_latency, self.normalized_accuracy,
                f"{self.native_metric}={self.native_value:.4g}"]


def run_comparison(app: FluidApp, input_name: str,
                   threshold: Optional[float] = None,
                   valve: Optional[str] = None,
                   **fluid_kwargs) -> BenchRow:
    """Run precise and fluid once; return the normalized row."""
    if valve is None:
        valve = HEADLINE_VALVE.get(app.name, "percent")
    precise = app.run_precise()
    fluid = app.run_fluid(threshold=threshold, valve=valve, **fluid_kwargs)
    return BenchRow(
        app=app.name,
        input_name=input_name,
        normalized_latency=fluid.makespan / precise.makespan,
        normalized_accuracy=fluid.accuracy,
        native_metric=fluid.metric_name,
        native_value=fluid.metric,
        precise_makespan=precise.makespan,
        fluid_makespan=fluid.makespan)


# --------------------------------------------------------------- factories

def kmeans_inputs() -> Dict[str, Callable[[], FluidApp]]:
    """Three pixel-diversity classes (the paper's three input images)."""
    return {
        f"div{diversity}": (lambda diversity=diversity: KMeansApp(
            synthetic_image(40, 40, diversity=diversity, noise=6.0,
                            seed=diversity),
            num_clusters=max(3, diversity), epochs=6))
        for diversity in (3, 6, 9)
    }


def bellman_ford_inputs() -> Dict[str, Callable[[], FluidApp]]:
    """Size x density grid (the paper's 1K_200K ... 5K_2M axis)."""
    shapes = {"1K_4K": (1000, 4000), "1K_16K": (1000, 16000),
              "2K_8K": (2000, 8000), "2K_32K": (2000, 32000)}
    return {name: (lambda n=n, m=m, name=name: BellmanFordApp(
        random_graph(n, m, seed=13, name=name), iterations=8))
        for name, (n, m) in shapes.items()}


def graph_coloring_inputs() -> Dict[str, Callable[[], FluidApp]]:
    shapes = {"1K_4K": (1000, 4000), "1K_12K": (1000, 12000),
              "2K_8K": (2000, 8000), "2K_24K": (2000, 24000)}
    return {name: (lambda n=n, m=m, name=name: GraphColoringApp(
        random_graph(n, m, seed=17, name=name)))
        for name, (n, m) in shapes.items()}


def edge_detection_inputs() -> Dict[str, Callable[[], FluidApp]]:
    classes = image_classes(48, 48, seed=23)
    return {name: (lambda image=image: EdgeDetectionApp(image))
            for name, image in classes.items()}


def fft_inputs() -> Dict[str, Callable[[], FluidApp]]:
    return {
        "N1K": lambda: FFTApp([random_vector(1024, seed=29)]),
        "N4K": lambda: FFTApp([random_vector(4096, seed=29)]),
    }


def dct_inputs() -> Dict[str, Callable[[], FluidApp]]:
    return {
        "64x64": lambda: DCTApp(random_tensor(64, 64, seed=31)),
        "128x128": lambda: DCTApp(random_tensor(128, 128, seed=31)),
    }


def neural_network_inputs() -> Dict[str, Callable[[], FluidApp]]:
    dataset = synthetic_digits(samples=256, features=196, seed=37)
    return {
        "lenet": lambda: NeuralNetworkApp(dataset, architecture="lenet"),
        "vgg": lambda: NeuralNetworkApp(dataset, architecture="vgg"),
    }


def medusadock_inputs() -> Dict[str, Callable[[], FluidApp]]:
    def build(placement):
        dockings = [synthetic_poses(num_poses=64, seed=s,
                                    placement=placement, name=f"p{s}")
                    for s in range(6)]
        return MedusaDockApp(dockings)

    return {"pdb-early": lambda: build("early")}


def standard_suite() -> Dict[str, Dict[str, Callable[[], FluidApp]]]:
    """The full Figure-6 application/input matrix."""
    return {
        "kmeans": kmeans_inputs(),
        "bellman_ford": bellman_ford_inputs(),
        "graph_coloring": graph_coloring_inputs(),
        "edge_detection": edge_detection_inputs(),
        "fft": fft_inputs(),
        "dct": dct_inputs(),
        "neural_network": neural_network_inputs(),
        "medusadock": medusadock_inputs(),
    }


def bench_overheads():
    """The overhead model used by all benchmarks (see apps.base)."""
    return DEFAULT_OVERHEADS
