"""Standard benchmark workloads and comparison runners.

``standard_suite`` builds the application/input matrix of the paper's
Figure 6 at repository scale (inputs sized so the whole benchmark run
finishes in minutes on a laptop while preserving every sensitivity axis:
graph density, image noise, vector size, network width, protein count).
``run_comparison`` executes precise-vs-fluid for one app and returns a
:class:`BenchRow` with the normalized numbers the figures plot.

``run_backend_bench`` is the real-core counterpart of Figure 12: it
times the same CPU-bound fan-out region on the thread backend and on a
requested backend, reporting wall-clock seconds and the speedup.  The
workload is pure Python (no numpy kernels) so the thread backend is
genuinely GIL-bound and the process backend's parallelism is visible.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..apps.base import DEFAULT_OVERHEADS, FluidApp
from ..core.region import FluidRegion
from ..runtime.executor import make_executor
from ..apps.bellman_ford import BellmanFordApp
from ..apps.dct import DCTApp
from ..apps.edge_detection import EdgeDetectionApp
from ..apps.fft import FFTApp
from ..apps.graph_coloring import GraphColoringApp
from ..apps.kmeans import KMeansApp
from ..apps.medusadock import MedusaDockApp
from ..apps.neural_network import NeuralNetworkApp
from ..workloads import (image_classes, random_graph, random_tensor,
                         random_vector, synthetic_digits, synthetic_image,
                         synthetic_poses)

#: Per-app valve used for the headline Figure-6 numbers; MedusaDock's
#: preferred valve is convergence (Section 7.3).
HEADLINE_VALVE: Dict[str, str] = {"medusadock": "convergence"}


@dataclass
class BenchRow:
    """One normalized latency/accuracy data point.

    Besides the Figure-6 numbers the row carries the runtime-efficiency
    counters the baseline machinery (:mod:`repro.bench.baseline`)
    tracks across revisions: how many valve evaluations the fluid run
    paid for, how many ``check()`` calls memoization answered without
    recomputing, and how many task re-executions the valves triggered.
    """

    app: str
    input_name: str
    normalized_latency: float
    normalized_accuracy: float
    native_metric: str
    native_value: float
    precise_makespan: float
    fluid_makespan: float
    valve_checks: int = 0
    valve_checks_skipped: int = 0
    reexecutions: int = 0
    #: Best-of-``repeat`` makespan; the wall-clock latency gate uses it
    #: because scheduler noise is additive, so the minimum converges to
    #: the true runtime while the mean tracks transient load.  ``None``
    #: for single runs (the mean IS the single measurement).
    fluid_makespan_min: Optional[float] = None

    @property
    def gate_makespan(self) -> float:
        """The makespan the latency gate compares (min when repeated)."""
        if self.fluid_makespan_min is not None:
            return self.fluid_makespan_min
        return self.fluid_makespan

    @property
    def key(self) -> str:
        """Stable workload identifier used by baseline files."""
        return f"{self.app}/{self.input_name}"

    def as_list(self) -> List:
        return [self.app, self.input_name,
                self.normalized_latency, self.normalized_accuracy,
                f"{self.native_metric}={self.native_value:.4g}"]


def collect_region_counters(regions) -> "tuple[int, int, int]":
    """Sum (valve checks, memo-skipped checks, re-executions) over regions.

    A re-execution is any completed run of a task beyond its first —
    the work the approximate-concurrency gamble pays when an end check
    fails, and one of the quantities baselines guard across revisions.
    """
    checks = skipped = reexecutions = 0
    for region in regions:
        for valve in region.valves:
            checks += valve.checks
            skipped += valve.checks_skipped
        for task in region.tasks:
            reexecutions += max(0, task.stats.runs - 1)
    return checks, skipped, reexecutions


def run_comparison(app: FluidApp, input_name: str,
                   threshold: Optional[float] = None,
                   valve: Optional[str] = None,
                   repeat: int = 1,
                   **fluid_kwargs) -> BenchRow:
    """Run precise once and fluid ``repeat`` times; return the mean row.

    ``repeat > 1`` reports per-workload *means* of latency and the
    runtime counters — essential for wall-clock backends, whose
    single-run times on these repository-scale inputs are milliseconds
    and dominated by scheduler noise.  A telemetry object in
    ``fluid_kwargs`` instruments only the first fluid run (one bus, one
    clock).
    """
    if valve is None:
        valve = HEADLINE_VALVE.get(app.name, "percent")
    precise = app.run_precise()
    repeat = max(1, repeat)
    runs = []
    for index in range(repeat):
        kwargs = dict(fluid_kwargs)
        if index > 0:
            kwargs.pop("telemetry", None)
        fluid = app.run_fluid(threshold=threshold, valve=valve, **kwargs)
        runs.append((fluid, collect_region_counters(fluid.regions)))
    mean = lambda values: sum(values) / len(values)  # noqa: E731
    first = runs[0][0]
    return BenchRow(
        app=app.name,
        input_name=input_name,
        normalized_latency=mean([f.makespan for f, _c in runs])
        / precise.makespan,
        normalized_accuracy=mean([f.accuracy for f, _c in runs]),
        native_metric=first.metric_name,
        native_value=mean([f.metric for f, _c in runs]),
        precise_makespan=precise.makespan,
        fluid_makespan=mean([f.makespan for f, _c in runs]),
        valve_checks=round(mean([c[0] for _f, c in runs])),
        valve_checks_skipped=round(mean([c[1] for _f, c in runs])),
        reexecutions=round(mean([c[2] for _f, c in runs])),
        fluid_makespan_min=(min(f.makespan for f, _c in runs)
                            if repeat > 1 else None))


# --------------------------------------------------------------- factories

def kmeans_inputs() -> Dict[str, Callable[[], FluidApp]]:
    """Three pixel-diversity classes (the paper's three input images)."""
    return {
        f"div{diversity}": (lambda diversity=diversity: KMeansApp(
            synthetic_image(40, 40, diversity=diversity, noise=6.0,
                            seed=diversity),
            num_clusters=max(3, diversity), epochs=6))
        for diversity in (3, 6, 9)
    }


def bellman_ford_inputs() -> Dict[str, Callable[[], FluidApp]]:
    """Size x density grid (the paper's 1K_200K ... 5K_2M axis)."""
    shapes = {"1K_4K": (1000, 4000), "1K_16K": (1000, 16000),
              "2K_8K": (2000, 8000), "2K_32K": (2000, 32000)}
    return {name: (lambda n=n, m=m, name=name: BellmanFordApp(
        random_graph(n, m, seed=13, name=name), iterations=8))
        for name, (n, m) in shapes.items()}


def graph_coloring_inputs() -> Dict[str, Callable[[], FluidApp]]:
    shapes = {"1K_4K": (1000, 4000), "1K_12K": (1000, 12000),
              "2K_8K": (2000, 8000), "2K_24K": (2000, 24000)}
    return {name: (lambda n=n, m=m, name=name: GraphColoringApp(
        random_graph(n, m, seed=17, name=name)))
        for name, (n, m) in shapes.items()}


def edge_detection_inputs() -> Dict[str, Callable[[], FluidApp]]:
    classes = image_classes(48, 48, seed=23)
    return {name: (lambda image=image: EdgeDetectionApp(image))
            for name, image in classes.items()}


def fft_inputs() -> Dict[str, Callable[[], FluidApp]]:
    return {
        "N1K": lambda: FFTApp([random_vector(1024, seed=29)]),
        "N4K": lambda: FFTApp([random_vector(4096, seed=29)]),
    }


def dct_inputs() -> Dict[str, Callable[[], FluidApp]]:
    return {
        "64x64": lambda: DCTApp(random_tensor(64, 64, seed=31)),
        "128x128": lambda: DCTApp(random_tensor(128, 128, seed=31)),
    }


def neural_network_inputs() -> Dict[str, Callable[[], FluidApp]]:
    dataset = synthetic_digits(samples=256, features=196, seed=37)
    return {
        "lenet": lambda: NeuralNetworkApp(dataset, architecture="lenet"),
        "vgg": lambda: NeuralNetworkApp(dataset, architecture="vgg"),
    }


def medusadock_inputs() -> Dict[str, Callable[[], FluidApp]]:
    def build(placement):
        dockings = [synthetic_poses(num_poses=64, seed=s,
                                    placement=placement, name=f"p{s}")
                    for s in range(6)]
        return MedusaDockApp(dockings)

    return {"pdb-early": lambda: build("early")}


def standard_suite() -> Dict[str, Dict[str, Callable[[], FluidApp]]]:
    """The full Figure-6 application/input matrix."""
    return {
        "kmeans": kmeans_inputs(),
        "bellman_ford": bellman_ford_inputs(),
        "graph_coloring": graph_coloring_inputs(),
        "edge_detection": edge_detection_inputs(),
        "fft": fft_inputs(),
        "dct": dct_inputs(),
        "neural_network": neural_network_inputs(),
        "medusadock": medusadock_inputs(),
    }


def bench_overheads():
    """The overhead model used by all benchmarks (see apps.base)."""
    return DEFAULT_OVERHEADS


# ------------------------------------------------- real-core backend bench

def _lcg_kernel(seed: int, iterations: int) -> int:
    """A pure-Python 64-bit LCG loop: CPU-bound, GIL-bound, deterministic."""
    acc = seed
    for _ in range(iterations):
        acc = (acc * 6364136223846793005 + 1442695040888963407) % (1 << 64)
    return acc


def make_cpu_bound_region(name: str = "cpu_bound", tasks: int = 4,
                          iterations: int = 200_000,
                          chunks: int = 16) -> FluidRegion:
    """An embarrassingly parallel fan-out of pure-Python crunch tasks.

    A trivial header task distributes one seed per crunch task; each
    crunch task is gated on its own seed cell being final, runs exactly
    once, and writes its own output cell.  The region is therefore
    deterministic on every backend and honours the process-backend
    contract (honest declarations, one payload object per cell, no
    aliasing).
    """
    from ..core.valves import DataFinalValve

    class _CpuBound(FluidRegion):
        def build(self):
            seeds = self.input_data(
                "seeds", [7 + 13 * index for index in range(tasks)])
            cells = [self.add_data(f"seed_{index}", 0)
                     for index in range(tasks)]

            def distribute(ctx):
                values = seeds.read()
                for index in range(tasks):
                    cells[index].write(values[index])
                    yield 1.0

            self.add_task("distribute", distribute,
                          inputs=[seeds], outputs=list(cells))
            for index in range(tasks):
                out = self.add_data(f"out_{index}", 0)
                cell = cells[index]

                def body(ctx, cell=cell, out=out):
                    acc = cell.read()
                    step = max(1, iterations // chunks)
                    done = 0
                    while done < iterations:
                        count = min(step, iterations - done)
                        acc = _lcg_kernel(acc, count)
                        done += count
                        yield float(count)
                    out.write(acc)
                    yield 1.0

                self.add_task(f"crunch_{index}", body,
                              start_valves=[DataFinalValve(cell)],
                              inputs=[cell], outputs=[out])

    region = _CpuBound(name)
    # The factory is this module-level function itself, so the region
    # can ride a PersistentProcessPool (workers rebuild it from the
    # shape parameters instead of inheriting closures by fork).
    region.remote_factory = (make_cpu_bound_region,
                             (name, tasks, iterations, chunks), {})
    return region


def cpu_bound_shapes(quick: bool = False) -> Dict[str, "tuple[int, int]"]:
    """The (tasks, iterations) grid for the real-backend baseline suite."""
    if quick:
        return {"t4_i20k": (4, 20_000)}
    return {"t4_i80k": (4, 80_000), "t8_i80k": (8, 80_000)}


def run_region_comparison(input_name: str, tasks: int, iterations: int,
                          backend: str, workers: Optional[int] = None,
                          chunks: int = 16, repeat: int = 1,
                          telemetry=None) -> BenchRow:
    """Precise-vs-fluid :class:`BenchRow` for the CPU-bound fan-out region.

    The Figure-6 applications mostly violate the process-backend payload
    contract (aliased buffers), so real-backend baselines use this
    contract-honouring workload instead.  The precise reference is the
    same computation as a plain serial Python loop; both sides are
    wall-clock seconds, so rows are comparable to other runs of the same
    backend (and to their own recorded baseline), not to sim rows.
    """
    if backend not in ("thread", "process"):
        raise ValueError(
            f"run_region_comparison needs a real-time backend, not "
            f"{backend!r}")
    start = time.perf_counter()
    expected = [_lcg_kernel(7 + 13 * index, iterations)
                for index in range(tasks)]
    precise_seconds = time.perf_counter() - start

    runs = []
    for index in range(max(1, repeat)):
        region = make_cpu_bound_region(tasks=tasks, iterations=iterations,
                                       chunks=chunks)
        kwargs = {"timeout": 600.0}
        if backend == "process" and workers:
            kwargs["workers"] = workers
        if telemetry is not None and index == 0:
            kwargs["telemetry"] = telemetry
        executor = make_executor(backend, **kwargs)
        executor.submit(region)
        start = time.perf_counter()
        executor.run()
        fluid_seconds = time.perf_counter() - start
        outputs = [region.output(f"out_{i}") for i in range(tasks)]
        runs.append((fluid_seconds, outputs == expected,
                     collect_region_counters([region])))
    mean = lambda values: sum(values) / len(values)  # noqa: E731
    fluid_mean = mean([seconds for seconds, _ok, _c in runs])
    exact = all(ok for _seconds, ok, _c in runs)
    precise_floor = max(precise_seconds, 1e-9)
    return BenchRow(
        app="cpu_bound",
        input_name=input_name,
        normalized_latency=fluid_mean / precise_floor,
        normalized_accuracy=1.0 if exact else 0.0,
        native_metric="exact",
        native_value=1.0 if exact else 0.0,
        precise_makespan=precise_seconds,
        fluid_makespan=fluid_mean,
        valve_checks=round(mean([c[0] for _s, _ok, c in runs])),
        valve_checks_skipped=round(mean([c[1] for _s, _ok, c in runs])),
        reexecutions=round(mean([c[2] for _s, _ok, c in runs])),
        fluid_makespan_min=(min(s for s, _ok, _c in runs)
                            if repeat > 1 else None))


@dataclass
class DispatchBenchRow:
    """Legacy fork-per-run dispatch vs batched persistent-pool dispatch."""

    workers: int
    tasks: int
    iterations: int
    rounds: int
    batch_size: int
    legacy_seconds: float
    pooled_seconds: float
    outputs_match: bool

    @property
    def speedup(self) -> float:
        """Throughput ratio of the pooled path over the legacy path."""
        if self.pooled_seconds <= 0:
            return float("inf")
        return self.legacy_seconds / self.pooled_seconds


def run_process_dispatch_bench(workers: Optional[int] = None,
                               tasks: int = 24, iterations: int = 3000,
                               rounds: int = 6, batch_size: int = 16,
                               chunks: int = 4,
                               telemetry=None) -> DispatchBenchRow:
    """Time ``rounds`` back-to-back small-body fan-outs two ways.

    * *legacy*: a fresh fork-per-run executor with ``batch_size=1`` and
      the payload arena off — the pre-batching process backend, paying a
      fork, one queue round-trip per task, and a pool teardown per run;
    * *pooled*: one :class:`~repro.runtime.worker_pool.
      PersistentProcessPool` leased to every run, batched dispatch, the
      arena on.

    The bodies are deliberately tiny (milliseconds) so dispatch
    overhead — what this PR attacks — dominates, the way it does for
    ``FluidService`` requests and ``repro.stream`` windows.  The pool's
    one-time fork is excluded from the timed window because services
    amortize it across their lifetime; the legacy side's per-run forks
    are *in* the window because that is exactly its per-run cost.
    ``telemetry`` instruments the first pooled run only.
    """
    from ..runtime.process_backend import ProcessExecutor
    from ..runtime.worker_pool import PersistentProcessPool

    workers = workers if workers else (os.cpu_count() or 1)
    expected = [_lcg_kernel(7 + 13 * index, iterations)
                for index in range(tasks)]

    def one_round(**options):
        region = make_cpu_bound_region(tasks=tasks, iterations=iterations,
                                       chunks=chunks)
        executor = ProcessExecutor(workers=workers, timeout=600.0,
                                   **options)
        executor.submit(region)
        executor.run()
        return [region.output(f"out_{index}") for index in range(tasks)]

    match = True
    start = time.perf_counter()
    for _ in range(rounds):
        outputs = one_round(batch_size=1, payload_arena=False)
        match = match and outputs == expected
    legacy_seconds = time.perf_counter() - start

    with PersistentProcessPool(workers=workers, name="bench-pool") as pool:
        start = time.perf_counter()
        for index in range(rounds):
            options = {"pool": pool, "batch_size": batch_size}
            if telemetry is not None and index == 0:
                options["telemetry"] = telemetry
            outputs = one_round(**options)
            match = match and outputs == expected
        pooled_seconds = time.perf_counter() - start

    return DispatchBenchRow(
        workers=workers, tasks=tasks, iterations=iterations, rounds=rounds,
        batch_size=batch_size, legacy_seconds=legacy_seconds,
        pooled_seconds=pooled_seconds, outputs_match=match)


@dataclass
class BackendBenchRow:
    """Wall-clock comparison of one backend against the thread baseline."""

    backend: str
    workers: int
    tasks: int
    iterations: int
    thread_seconds: float
    backend_seconds: float
    outputs_match: bool

    @property
    def speedup(self) -> float:
        if self.backend_seconds <= 0:
            return float("inf")
        return self.thread_seconds / self.backend_seconds


def run_backend_bench(backend: str = "process",
                      workers: Optional[int] = None,
                      tasks: Optional[int] = None,
                      scale: float = 1.0,
                      chunks: int = 16,
                      telemetry=None) -> BackendBenchRow:
    """Time a CPU-bound fan-out on ``backend`` against the thread backend.

    ``scale`` multiplies the per-task iteration count (tests pass a tiny
    value; the CLI default is sized for a seconds-long measurement).
    Outputs of both timed runs are checked against the serially computed
    expected values.  ``backend`` must be a real-time backend ("thread"
    or "process"); the simulator has no wall clock to compare.

    ``telemetry``, when given, instruments the *measured* backend run
    only — the thread baseline stays uninstrumented.
    """
    if backend not in ("thread", "process"):
        raise ValueError(
            f"run_backend_bench compares wall clocks; backend {backend!r} "
            "is not a real-time backend (use 'thread' or 'process')")
    workers = workers if workers else (os.cpu_count() or 1)
    tasks = tasks if tasks else max(2, workers)
    iterations = max(1, int(200_000 * scale))
    expected = [_lcg_kernel(7 + 13 * index, iterations)
                for index in range(tasks)]

    def timed(which: str, telemetry=None):
        region = make_cpu_bound_region(tasks=tasks, iterations=iterations,
                                       chunks=chunks)
        kwargs = {"timeout": 600.0}
        if which == "process":
            kwargs["workers"] = workers
        if telemetry is not None:
            kwargs["telemetry"] = telemetry
        executor = make_executor(which, **kwargs)
        executor.submit(region)
        start = time.perf_counter()
        executor.run()
        elapsed = time.perf_counter() - start
        outputs = [region.output(f"out_{index}") for index in range(tasks)]
        return elapsed, outputs

    thread_seconds, thread_outputs = timed("thread")
    backend_seconds, backend_outputs = timed(backend, telemetry=telemetry)
    return BackendBenchRow(
        backend=backend, workers=workers, tasks=tasks, iterations=iterations,
        thread_seconds=thread_seconds, backend_seconds=backend_seconds,
        outputs_match=(thread_outputs == expected
                       and backend_outputs == expected))
