"""k x backend x arrival-rate sweep for the streaming-pipeline layer.

``python -m repro.bench.stream_sweep`` runs each streaming app
(:data:`repro.stream.apps.APPS`) through its 3-stage pipeline for every
(staleness bound k, backend, arrival rate) cell and reports fig6-style
latency/accuracy rows: accuracy is measured item-for-item against the
serial fold reference (a missing item counts as fully wrong), latency
is the p50 source-to-final-queue delay (virtual time on sim).  The
``k = 0`` cell of each (app, backend, rate) group doubles as the
precise baseline the other cells normalize against.

The output document is schema ``repro-bench-baseline/1`` — one row per
cell, keyed ``<app>/k<k>:<backend>:r<rate>`` — with an extra top-level
``stream`` section holding per-cell queue telemetry (drops, parks,
stale reads, max displacement, delivered counts).  ``--check`` turns
the sweep into the streaming conformance gate (CI's stream-smoke job):

* the ``k = 0`` cell of every group must match the serial reference
  exactly (output parity and full delivery);
* no must-deliver item may be lost at any k (delivered + sheds must
  account for every sheddable-only loss);
* on the sim backend, p50 latency must be monotone non-increasing in k
  within each (app, rate) group — relaxing the valve may only help.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..stream.apps import APPS, StreamApp
from .baseline import baseline_dict
from .harness import BenchRow

#: Tolerance for the monotone-latency gate: relaxing k must not *raise*
#: p50 latency by more than this (virtual cost units), which forgives
#: tie-breaking noise between cells whose valves bind identically.
LATENCY_EPSILON = 1e-9


def _cell_name(k: float, backend: str, rate: float) -> str:
    return f"k{k:g}:{backend}:r{rate:g}"


def _run_cell(app: StreamApp, items: list, k: float, backend: str,
              rate: float, window: int) -> dict:
    """One (app, k, backend, rate) cell; returns the raw measurements."""
    pipeline = app.pipeline(k=k, window=window)
    pipeline.interarrival = app.interarrival / rate
    result = pipeline.run(items, backend=backend)
    reference = pipeline.run_serial(items)
    error = app.metric(result.outputs, reference)
    missing_must = sorted(
        seq for seq in reference
        if seq not in result.outputs and
        (app.must is None or app.must(seq)))
    p50 = result.percentile_latency(0.5)
    return {
        "app": app.name,
        "cell": _cell_name(k, backend, rate),
        "k": k,
        "backend": backend,
        "rate": rate,
        "items": len(items),
        "delivered": result.delivered,
        "drops": result.drops,
        "parks": result.parks,
        "stale_reads": result.stale_reads,
        "max_displacement": result.max_displacement,
        "missing_must": missing_must,
        "error": error,
        "accuracy": 1.0 - error,
        "p50_latency": p50,
        "makespan": result.makespan,
        "exact": result.outputs == reference,
        "end_verdicts_ok": all(result.end_verdicts.values()),
        "counters": (result.valve_checks, result.valve_checks_skipped,
                     result.reexecutions),
    }


def _make_row(cell: dict, baseline: dict) -> BenchRow:
    checks, skipped, reexecutions = cell["counters"]
    base_latency = baseline["p50_latency"] or baseline["makespan"]
    latency = cell["p50_latency"] or cell["makespan"]
    return BenchRow(
        app=cell["app"], input_name=cell["cell"],
        normalized_latency=(latency / base_latency if base_latency
                            else 1.0),
        normalized_accuracy=cell["accuracy"],
        native_metric="p50_latency", native_value=latency,
        precise_makespan=base_latency, fluid_makespan=latency,
        valve_checks=checks, valve_checks_skipped=skipped,
        reexecutions=reexecutions)


def run_sweep(apps: List[str], ks: List[float], backends: List[str],
              rates: List[float], items: int,
              window: int) -> "tuple[list, list]":
    """Run the full grid; returns (BenchRow list, cell-detail list)."""
    rows: List[BenchRow] = []
    details: List[dict] = []
    ks = sorted(set(ks))
    if 0 not in ks:
        ks = [0.0] + ks  # the k=0 cell is every group's baseline
    for app_name in apps:
        app = APPS[app_name]
        app_items = app.make_items(items)
        for backend in backends:
            for rate in rates:
                baseline: Optional[dict] = None
                for k in ks:
                    cell = _run_cell(app, app_items, k, backend, rate,
                                     window)
                    if baseline is None:
                        baseline = cell
                    rows.append(_make_row(cell, baseline))
                    details.append(cell)
    return rows, details


def check_details(details: List[dict]) -> List[str]:
    """The --check gate: returns human-readable failures (empty = pass)."""
    failures: List[str] = []
    groups: Dict[tuple, List[dict]] = {}
    for cell in details:
        label = f"{cell['app']}/{cell['cell']}"
        if cell["k"] == 0:
            if not cell["exact"]:
                failures.append(
                    f"{label}: k=0 output does not match the serial "
                    "reference exactly")
            if cell["delivered"] != cell["items"]:
                failures.append(
                    f"{label}: k=0 delivered {cell['delivered']} of "
                    f"{cell['items']} items")
        if cell["missing_must"]:
            failures.append(
                f"{label}: must-deliver items lost: "
                f"{cell['missing_must'][:5]}")
        if not cell["end_verdicts_ok"]:
            failures.append(f"{label}: final end-valve verdicts not all "
                            "satisfied")
        groups.setdefault((cell["app"], cell["backend"], cell["rate"]),
                          []).append(cell)
    for (app, backend, rate), cells in groups.items():
        if backend != "sim":
            continue  # wall-clock latency is noise-bound; sim-only gate
        cells = sorted(cells, key=lambda cell: cell["k"])
        for earlier, later in zip(cells, cells[1:]):
            before = earlier["p50_latency"]
            after = later["p50_latency"]
            if before is None or after is None:
                continue
            if after > before + LATENCY_EPSILON:
                failures.append(
                    f"{app} {backend} r{rate:g}: p50 latency rose from "
                    f"{before:g} (k={earlier['k']:g}) to {after:g} "
                    f"(k={later['k']:g}); must be monotone "
                    "non-increasing in k")
    return failures


def _render(rows: List[BenchRow], details: List[dict]) -> str:
    by_key = {f"{cell['app']}/{cell['cell']}": cell for cell in details}
    lines = [f"{'workload':<34} {'norm_lat':>9} {'accuracy':>9} "
             f"{'p50':>9} {'deliv':>6} {'drops':>6} {'stale':>6}"]
    for row in rows:
        cell = by_key[row.key]
        p50 = cell["p50_latency"]
        lines.append(
            f"{row.key:<34} {row.normalized_latency:>9.4f} "
            f"{row.normalized_accuracy:>9.4f} "
            f"{(f'{p50:.1f}' if p50 is not None else '-'):>9} "
            f"{cell['delivered']:>6} {cell['drops']:>6} "
            f"{cell['stale_reads']:>6}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.stream_sweep",
        description="staleness k x backend x arrival-rate streaming sweep")
    parser.add_argument("--apps", default="logagg,topk,frames",
                        help="comma list from: " + ", ".join(sorted(APPS)))
    parser.add_argument("--ks", default="0,2,8",
                        help="comma list of staleness bounds (0 is always "
                             "included as the per-group baseline)")
    parser.add_argument("--backends", default="sim",
                        help="comma list from: sim, thread, process")
    parser.add_argument("--rates", default="1,2",
                        help="comma list of arrival-rate multipliers over "
                             "each app's base interarrival")
    parser.add_argument("--items", type=int, default=240,
                        help="items per app stream")
    parser.add_argument("--window", type=int, default=40,
                        help="items per window/region")
    parser.add_argument("--quick", action="store_true",
                        help="small stream and one rate (CI smoke size)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the repro-bench-baseline/1 document "
                             "(with the extra 'stream' section) here")
    parser.add_argument("--check", action="store_true",
                        help="fail unless k=0 is exact, no must-deliver "
                             "item is lost, and sim p50 latency is "
                             "monotone non-increasing in k")
    args = parser.parse_args(argv)

    apps = [name.strip() for name in args.apps.split(",") if name.strip()]
    for name in apps:
        if name not in APPS:
            parser.error(f"unknown app {name!r}; expected one of "
                         + ", ".join(sorted(APPS)))
    backends = [name.strip() for name in args.backends.split(",")
                if name.strip()]
    for name in backends:
        if name not in ("sim", "thread", "process"):
            parser.error(f"unknown backend {name!r}")
    try:
        ks = [float(value) for value in args.ks.split(",") if value.strip()]
        rates = [float(value) for value in args.rates.split(",")
                 if value.strip()]
    except ValueError:
        parser.error(f"--ks/--rates must be numbers")
    if any(rate <= 0 for rate in rates):
        parser.error("--rates must be positive")
    items, window = args.items, args.window
    if args.quick:
        items = min(items, 120)
        rates = rates[:1]

    rows, details = run_sweep(apps, ks, backends, rates, items, window)
    print(_render(rows, details))

    if args.out:
        document = baseline_dict(rows, backend=",".join(backends),
                                 quick=args.quick, memoization=True,
                                 app="stream")
        document["stream"] = {
            "items": items, "window": window,
            "cells": [dict(cell, counters=list(cell["counters"]))
                      for cell in details],
        }
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.out} ({len(rows)} workloads, "
              f"{len(details)} cells)")

    if args.check:
        failures = check_details(details)
        if failures:
            print("\nstream sweep check FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("\nstream sweep check passed: k=0 exact, no must-deliver "
              "losses, sim p50 latency monotone in k")
    return 0


if __name__ == "__main__":
    sys.exit(main())
