"""Plain-text rendering of benchmark tables and series.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and readable in
pytest output.
"""

from __future__ import annotations

from typing import List, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], widths=None) -> str:
    columns = len(headers)
    if widths is None:
        widths = []
        for index in range(columns):
            cells = [str(headers[index])] + [
                _fmt(row[index]) for row in rows]
            widths.append(max(len(cell) for cell in cells) + 2)
    lines = [f"\n=== {title} ==="]
    lines.append("".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("".join("-" * (w - 1) + " " for w in widths))
    for row in rows:
        lines.append("".join(_fmt(cell).ljust(w)
                             for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, x_label: str, xs: Sequence,
                  series: dict) -> str:
    headers = [x_label] + list(series)
    rows: List[List] = []
    for index, x in enumerate(xs):
        rows.append([x] + [values[index] for values in series.values()])
    return render_table(title, headers, rows)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)
